//! The shared, indexed, parallel SAI scoring engine.
//!
//! The PSP hot path (paper Figure 7, blocks 2–6) queries the social corpus once
//! per attack keyword and folds the matching posts into SAI scores.  The naive
//! implementation rescans the corpus *and re-runs the text-mining pipeline* for
//! every keyword — O(keywords × posts) pipeline invocations, which also repeats
//! per analysis window in monitoring and time-window runs.
//!
//! Two engine shapes amortise all of that over one shared core:
//!
//! * [`ScoringEngine`] borrows a corpus snapshot — the right shape for one-off
//!   workflows and sweeps over a corpus someone else owns;
//! * [`LiveEngine`] owns its corpus and stays warm under **streaming
//!   ingestion**: [`LiveEngine::ingest`] appends a batch of posts, extends the
//!   inverted index in place ([`CorpusIndex::append`]), and grows the signal
//!   cache by exactly the batch — memoised signals of already-scored posts are
//!   never recomputed or wiped, because posts are immutable and ids are
//!   append-only.  This is the corpus-side prerequisite of the paper's
//!   continuous-monitoring loop (Fig. 9/12): ingest while serving, on one warm
//!   engine;
//! * [`ShardedEngine`] partitions the corpus into shards by time range or
//!   region (`socialsim::index::ShardSpec`), runs one engine core per shard in
//!   parallel, prunes shards whose key cannot match a query's window/region
//!   filters, and merges the per-shard partial evidence into a `SaiList`
//!   **bit-identical** to the single-engine result — the fleet-scale shape for
//!   very large or multi-market corpora.
//!
//! Both shapes share the same amortisations:
//!
//! * a [`CorpusIndex`] answers each keyword query from inverted structures
//!   instead of a scan;
//! * the per-post text signals (intent score, mined prices) and author
//!   credibility are memoised **at most once per post** — lazily, so posts no
//!   query ever reaches never pay for the text pipeline — and shared by every
//!   subsequent query and window;
//! * SAI lists for many keyword profiles — and many configurations over the
//!   same corpus — fan out over worker threads with `rayon`
//!   ([`ScoringEngine::precompute_signals`] warms the whole cache in parallel
//!   for throughput-critical serving).
//!
//! The engines are *exactly* equivalent to the naive path: candidate ids come
//! back in ascending post order, so every sum is folded in the same order the
//! linear scan would use, producing bit-identical `SaiList`s — and appending
//! then scoring is bit-identical to rebuilding then scoring (both pinned down
//! by the `psp-suite` property tests).
//!
//! All former callers of `SaiList::compute` route through here:
//! [`crate::sai::SaiList::compute`] delegates to a one-shot engine, while
//! [`crate::workflow::PspWorkflow`], [`crate::monitoring::MonitoringSeries`]
//! and [`crate::timewindow::compare_windows`] build one engine per corpus and
//! reuse it across keywords and windows; [`crate::monitoring::LiveMonitor`]
//! holds a [`LiveEngine`] and interleaves ingestion with re-evaluation.

use crate::config::PspConfig;
use crate::keyword_db::{KeywordDatabase, KeywordProfile};
use crate::sai::{SaiEntry, SaiList, SaiPartial};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use socialsim::corpus::Corpus;
use socialsim::index::CorpusIndex;
use socialsim::post::Post;
use socialsim::query::Query;
use socialsim::time::DateWindow;
use std::sync::OnceLock;
use textmine::pipeline::TextPipeline;

mod cache;
mod matrix;
mod sharded;
mod sweep;

pub use cache::{SignalCacheError, SignalCacheFile, SIGNAL_CACHE_VERSION};
pub use matrix::{CellId, MatrixResults, MatrixSpec};
pub use sharded::ShardedEngine;

use sweep::PlanCache;

/// The window axis of a sweep: an ordered list of analysis windows, each
/// either a concrete [`DateWindow`] or `None` for the full history — the one
/// canonical way to say "evaluate these windows" to every engine shape (see
/// [`SaiScorer::sai_windows`]).
///
/// Build it from concrete windows ([`WindowAxis::each`]), from optional spans
/// ([`WindowAxis::spans`]), or incrementally with the
/// [`window`](WindowAxis::window) / [`full_history`](WindowAxis::full_history)
/// builders.  The axis serialises as a plain JSON array, so service requests
/// carry it directly.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowAxis(Vec<Option<DateWindow>>);

impl WindowAxis {
    /// An empty axis (sweeping it yields no lists).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// One entry per concrete window.
    #[must_use]
    pub fn each(windows: &[DateWindow]) -> Self {
        Self(windows.iter().copied().map(Some).collect())
    }

    /// One entry per optional span (`None` = full history) — the general
    /// form a Figure-9 "all history vs recent window" comparison needs.
    #[must_use]
    pub fn spans(windows: &[Option<DateWindow>]) -> Self {
        Self(windows.to_vec())
    }

    /// Appends a concrete window.
    #[must_use]
    pub fn window(mut self, window: DateWindow) -> Self {
        self.0.push(Some(window));
        self
    }

    /// Appends a full-history entry.
    #[must_use]
    pub fn full_history(mut self) -> Self {
        self.0.push(None);
        self
    }

    /// Number of entries on the axis.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the axis has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The entries as optional windows, in axis order.
    #[must_use]
    pub fn as_options(&self) -> &[Option<DateWindow>] {
        &self.0
    }
}

impl From<Vec<Option<DateWindow>>> for WindowAxis {
    fn from(windows: Vec<Option<DateWindow>>) -> Self {
        Self(windows)
    }
}

/// What one ingest observed, atomically: how many posts were appended and the
/// generation the engine publishes them under.  Returned by
/// [`StreamingScorer::ingest_batch`] so callers (and daemon responses) can
/// stamp results with the exact engine version that includes the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IngestReceipt {
    /// Number of posts appended by this batch.
    pub appended: usize,
    /// The engine generation after the batch (unchanged for an empty batch).
    pub generation: u64,
}

/// Anything that can answer SAI computations — implemented by every engine
/// shape ([`ScoringEngine`], [`LiveEngine`], [`ShardedEngine`]) so the
/// windowed entry points ([`crate::timewindow::compare_windows_live`],
/// [`crate::monitoring::LiveMonitor`]) are generic over how the corpus is
/// held rather than hard-wired to one engine.
pub trait SaiScorer {
    /// Computes the full SAI list for a keyword database and configuration.
    fn sai_list(&self, db: &KeywordDatabase, config: &PspConfig) -> SaiList;

    /// Computes one SAI list per configuration against the same corpus (the
    /// batch entry point for heterogeneous configuration sets).  Always
    /// returns exactly one list per configuration.
    fn sai_lists(&self, db: &KeywordDatabase, configs: &[PspConfig]) -> Vec<SaiList>;

    /// Computes one SAI list per entry on a [`WindowAxis`] against one shared
    /// base configuration — the canonical sweep entry point for monitoring
    /// series, Figure-9 comparisons and fleet sweeps, where only the window
    /// varies.  Each axis entry either restricts the analysis to a window or
    /// (`None`) spans the full history; `base_config`'s own window is
    /// replaced per entry.
    ///
    /// Semantically identical to [`sai_lists`](Self::sai_lists) over
    /// `base_config.clone().with_window(w)` for every axis entry, and
    /// **bit-identical** to it on every engine shape; the engines override
    /// the implementation with a prefix-summed columnar plan that makes the
    /// per-window cost ~O(log candidates + window matches) instead of
    /// O(candidates) — see the `psp::engine::sweep` module docs.  Always
    /// returns exactly one list per axis entry.
    fn sai_windows(
        &self,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        axis: &WindowAxis,
    ) -> Vec<SaiList> {
        let configs: Vec<PspConfig> = axis
            .as_options()
            .iter()
            .map(|window| {
                let mut config = base_config.clone();
                config.window = *window;
                config
            })
            .collect();
        self.sai_lists(db, &configs)
    }

    /// Deprecated spelling of [`sai_windows`](Self::sai_windows) over
    /// concrete windows.
    #[deprecated(since = "0.2.0", note = "use sai_windows with WindowAxis::each")]
    fn sai_sweep(
        &self,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        windows: &[DateWindow],
    ) -> Vec<SaiList> {
        self.sai_windows(db, base_config, &WindowAxis::each(windows))
    }

    /// Deprecated spelling of [`sai_windows`](Self::sai_windows) over
    /// optional (`None` = full-history) windows.
    #[deprecated(since = "0.2.0", note = "use sai_windows with WindowAxis::spans")]
    fn sai_sweep_opt(
        &self,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        windows: &[Option<DateWindow>],
    ) -> Vec<SaiList> {
        self.sai_windows(db, base_config, &WindowAxis::spans(windows))
    }

    /// Resolves a full (scenario × configuration × window) cross-product —
    /// the batch plane (see [`MatrixSpec`]).
    ///
    /// Every cell is bit-identical to the corresponding nested
    /// [`sai_list`](Self::sai_list) / [`sai_windows`](Self::sai_windows)
    /// calls; the scheduler orders cells so that every (database, scene)
    /// pair in the matrix builds its sweep plan exactly once.
    fn sai_matrix(&self, spec: &MatrixSpec) -> MatrixResults {
        let mut results = MatrixResults::empty_for(spec);
        self.sai_matrix_stream(spec, &mut |id, sai| results.push(id, sai));
        results
    }

    /// The streaming form of [`sai_matrix`](Self::sai_matrix): cells are
    /// handed to `sink` in deterministic [`CellId`] order (scenario-major,
    /// then configuration, then window) as their row resolves, so a caller
    /// can render or persist incrementally instead of holding the whole
    /// cross-product.
    fn sai_matrix_stream(&self, spec: &MatrixSpec, sink: &mut dyn FnMut(CellId, SaiList)) {
        matrix::run_matrix(self, spec, sink);
    }
}

/// A scorer that owns its corpus and absorbs streaming ingestion — the
/// contract [`crate::monitoring::LiveMonitor`] needs from its engine, met by
/// both [`LiveEngine`] (one warm index) and [`ShardedEngine`] (shard-aware
/// routing).
pub trait StreamingScorer: SaiScorer {
    /// Ingests a batch of posts, returning a receipt with the number of
    /// posts appended and the generation they are published under — both
    /// observed atomically under the same `&mut self`.
    fn ingest_batch(&mut self, batch: Vec<Post>) -> IngestReceipt;

    /// Number of posts currently served.
    fn post_count(&self) -> usize;

    /// Number of non-empty ingest batches absorbed since construction.
    fn generation(&self) -> u64;

    /// Exports the memoised per-post text signals as a persistable
    /// [`SignalCacheFile`], materialising any signal not yet paid for — the
    /// generic handle the service daemon's export-cache request rides.
    fn export_signal_cache(&self) -> SignalCacheFile;

    /// A deep copy of the served corpus in global ingest order — the
    /// checkpoint payload of the durability plane.  Rebuilding an engine of
    /// the same shape over this corpus (plus
    /// [`restore_generation`](Self::restore_generation)) must reproduce
    /// bit-identical scoring.
    fn snapshot_corpus(&self) -> Corpus;

    /// Overrides the generation counter — recovery only.  A rebuilt engine
    /// starts at generation zero; restoring the checkpointed generation makes
    /// recovered responses stamp the same generation the pre-crash service
    /// would have, completing bit-identical recovery.
    fn restore_generation(&mut self, generation: u64);
}

/// The query the SAI computation issues for one keyword profile under one
/// configuration (hashtag OR keyword content, conjunctive scene filters) —
/// shared by [`EngineCore`] and the public
/// [`ScoringEngine::profile_query`] entry point.
fn profile_query(profile: &KeywordProfile, config: &PspConfig) -> Query {
    let mut query = Query::new()
        .with_hashtag(profile.keyword.as_str())
        .with_keyword(profile.keyword.as_str())
        .in_region(config.region)
        .about(config.application);
    if let Some(window) = config.window {
        query = query.within(window);
    }
    query
}

/// Per-post evidence computed at most once per post, on first use.
#[derive(Debug, Clone)]
struct PostSignals {
    /// View count.
    views: u64,
    /// Active interactions (likes + replies + reposts).
    interactions: u64,
    /// Text-mined intent score.
    intent: f64,
    /// Prices mined from the text (EUR), in extraction order.
    prices: Vec<f64>,
    /// Author credibility in `[0, 1]`.
    credibility: f64,
    /// Interactions per view.
    interaction_rate: f64,
}

impl PostSignals {
    /// Combines a post's cheap engagement/credibility fields with its mined
    /// text evidence — the single construction site shared by fresh mining
    /// ([`EngineCore::signal`]) and cache install
    /// ([`EngineCore::install_cached`]), so the two can never drift apart.
    fn from_post(post: &Post, intent: f64, prices: Vec<f64>) -> Self {
        Self {
            views: post.engagement().views,
            interactions: post.engagement().interactions(),
            intent,
            prices,
            credibility: post.author().credibility(),
            interaction_rate: post.engagement().interaction_rate(),
        }
    }
}

/// The corpus-agnostic scoring core shared by [`ScoringEngine`] (borrowed
/// corpus) and [`LiveEngine`] (owned corpus): the inverted index, the text
/// pipeline and the memoised per-post signal cache.  Every method takes the
/// corpus explicitly so the two ownership shapes stay thin wrappers.
#[derive(Debug, Clone)]
struct EngineCore {
    index: CorpusIndex,
    pipeline: TextPipeline,
    /// Lazily initialised per-post signals: a post pays for the text-mining
    /// pipeline at most once, and only if some query actually reaches it.
    signals: Vec<OnceLock<PostSignals>>,
    /// Number of ingest batches absorbed since construction (0 for snapshot
    /// engines).  Observers use this to detect that re-evaluation is due.
    generation: u64,
    /// The cached window-sweep plan (see [`sweep`]), keyed by `generation`
    /// plus the (database, scene) pair — an ingest bumps the generation and
    /// thereby invalidates the plan.
    plans: PlanCache,
}

impl EngineCore {
    /// Builds a core whose signals are mined by `pipeline` — how custom
    /// lexica (and the frozen reference pipeline, for baseline measurements)
    /// flow into an engine.
    fn with_pipeline(corpus: &Corpus, pipeline: TextPipeline) -> Self {
        let index = CorpusIndex::build(corpus);
        let mut signals = Vec::new();
        signals.resize_with(corpus.posts().len(), OnceLock::new);
        Self {
            index,
            pipeline,
            signals,
            generation: 0,
            plans: PlanCache::default(),
        }
    }

    /// Absorbs `new_posts` trailing posts of `corpus`: the index is extended in
    /// place and the signal cache grows by exactly the batch.  Nothing already
    /// memoised is recomputed or invalidated — posts are immutable and ids are
    /// append-only, so only the *new* ids ever need (lazy) signal computation.
    fn append(&mut self, corpus: &Corpus, new_posts: usize) {
        self.index.append(corpus, new_posts);
        self.signals
            .resize_with(corpus.posts().len(), OnceLock::new);
        if new_posts > 0 {
            self.generation += 1;
        }
    }

    /// The (memoised) signals of one post.  Text mining runs through the
    /// lean [`TextPipeline::signals`] entry point — the single fused pass,
    /// with no token or hashtag strings materialised.
    fn signal(&self, corpus: &Corpus, id: u32) -> &PostSignals {
        self.signals[id as usize].get_or_init(|| {
            let post = &corpus.posts()[id as usize];
            let mined = self.pipeline.signals(post.text());
            PostSignals::from_post(post, mined.intent.score, mined.prices)
        })
    }

    /// Installs one post's cached text signals (the cheap engagement /
    /// credibility fields are recomputed from the post, the mined evidence
    /// comes from the cache).  Returns whether the slot was actually empty.
    fn install_cached(&self, corpus: &Corpus, id: u32, intent: f64, prices: &[f64]) -> bool {
        let post = &corpus.posts()[id as usize];
        self.signals[id as usize]
            .set(PostSignals::from_post(post, intent, prices.to_vec()))
            .is_ok()
    }

    /// One post's exportable cache row (id, intent, prices).  The signals
    /// must already be materialised (run `precompute_signals` first).
    fn cached_row(&self, corpus: &Corpus, id: u32) -> (u64, f64, &[f64]) {
        let signal = self.signals[id as usize]
            .get()
            .expect("signals precomputed before export");
        (
            corpus.posts()[id as usize].id(),
            signal.intent,
            &signal.prices,
        )
    }

    /// Exports the full signal cache in corpus order, materialising any
    /// signal not yet paid for.
    fn export_cache(&self, corpus: &Corpus) -> SignalCacheFile {
        self.precompute_signals(corpus);
        let mut file = SignalCacheFile::empty(*self.pipeline.lexicon(), corpus.len());
        for id in 0..corpus.len() as u32 {
            let (post_id, intent, prices) = self.cached_row(corpus, id);
            file.push_row(post_id, intent, prices);
        }
        file
    }

    /// Validates a cache against this core's corpus and installs every row —
    /// the restart path that skips text mining entirely.  Returns the number
    /// of posts whose signals were installed from the cache (already-memoised
    /// posts are left untouched; a valid cache holds identical values).
    fn load_cache(
        &self,
        corpus: &Corpus,
        cache: &SignalCacheFile,
    ) -> Result<usize, SignalCacheError> {
        cache.check_shape(corpus.len(), self.pipeline.lexicon())?;
        for (index, post) in corpus.posts().iter().enumerate() {
            if cache.post_ids[index] != post.id() {
                return Err(SignalCacheError::PostIdMismatch {
                    index,
                    cached: cache.post_ids[index],
                    found: post.id(),
                });
            }
        }
        let offsets = cache.price_offsets();
        let mut installed = 0_usize;
        for id in 0..corpus.len() {
            let prices = &cache.prices[offsets[id]..offsets[id + 1]];
            if self.install_cached(corpus, id as u32, cache.intents[id], prices) {
                installed += 1;
            }
        }
        Ok(installed)
    }

    /// Eagerly materialises the signals of every post, fanning out over worker
    /// threads.
    fn precompute_signals(&self, corpus: &Corpus) {
        let ids: Vec<u32> = (0..self.signals.len() as u32).collect();
        let _: Vec<()> = ids
            .par_iter()
            .map(|id| {
                self.signal(corpus, *id);
            })
            .collect();
    }

    /// Scores one keyword profile into an (unnormalised) SAI entry.
    fn score_profile(
        &self,
        corpus: &Corpus,
        profile: &KeywordProfile,
        config: &PspConfig,
    ) -> SaiEntry {
        let query = profile_query(profile, config);
        let ids = self.index.query(corpus, &query);
        self.aggregate(corpus, profile, config, ids.into_iter())
    }

    /// Folds a set of candidate post ids (ascending) into an SAI entry.
    fn aggregate(
        &self,
        corpus: &Corpus,
        profile: &KeywordProfile,
        config: &PspConfig,
        ids: impl Iterator<Item = u32>,
    ) -> SaiEntry {
        let weights = config.sai_weights;
        let mut posts = 0_usize;
        let mut views = 0_u64;
        let mut interactions = 0_u64;
        let mut intent = 0.0_f64;
        let mut prices = Vec::new();
        for id in ids {
            let signal = self.signal(corpus, id);
            if let Some(threshold) = config.min_author_credibility {
                // Same rule as the naive path: credible author, or organic
                // engagement above 1% interaction rate.
                if signal.credibility < threshold && signal.interaction_rate <= 0.01 {
                    continue;
                }
            }
            posts += 1;
            views += signal.views;
            interactions += signal.interactions;
            intent += signal.intent;
            prices.extend_from_slice(&signal.prices);
        }
        let sai = weights.view_weight * views as f64
            + weights.interaction_weight * interactions as f64
            + weights.post_weight * posts as f64
            + weights.intent_weight * intent;

        SaiEntry {
            keyword: profile.keyword.clone(),
            scenario: profile.scenario.clone(),
            vector: profile.vector,
            origin: profile.origin,
            posts,
            views,
            interactions,
            intent,
            prices,
            sai,
            probability: 0.0,
        }
    }

    /// Scores one keyword profile into a mergeable shard partial: candidate
    /// ids come from this core's own (shard-local) index, and the
    /// order-sensitive per-post evidence is recorded against *global* post ids
    /// (via `global_ids`, the shard's local→global mapping) so the merge step
    /// can re-fold it in corpus order.
    fn score_profile_partial(
        &self,
        corpus: &Corpus,
        profile: &KeywordProfile,
        config: &PspConfig,
        global_ids: &[u32],
    ) -> SaiPartial {
        let query = profile_query(profile, config);
        let ids = self.index.query(corpus, &query);
        self.aggregate_partial(corpus, config, ids.into_iter(), global_ids)
    }

    /// Folds a set of candidate local ids (ascending) into a shard partial —
    /// the partial-scoring counterpart of [`aggregate`](Self::aggregate),
    /// applying the same credibility filter and visiting posts in the same
    /// (local == global) relative order.
    fn aggregate_partial(
        &self,
        corpus: &Corpus,
        config: &PspConfig,
        ids: impl Iterator<Item = u32>,
        global_ids: &[u32],
    ) -> SaiPartial {
        let mut partial = SaiPartial::default();
        for id in ids {
            let signal = self.signal(corpus, id);
            if let Some(threshold) = config.min_author_credibility {
                // Same rule as the full aggregation path.
                if signal.credibility < threshold && signal.interaction_rate <= 0.01 {
                    continue;
                }
            }
            partial.push_post(
                global_ids[id as usize],
                signal.views,
                signal.interactions,
                signal.intent,
                &signal.prices,
            );
        }
        partial
    }

    /// A profile's *content* candidates (keyword/hashtag matches), ascending.
    ///
    /// The content condition does not depend on a configuration's
    /// region/application/window filters, so batch callers resolve the
    /// candidates once per profile — against any representative config — and
    /// re-apply only the cheap metadata predicates per configuration (see
    /// [`BatchCandidates`]).
    fn content_candidates_for(
        &self,
        corpus: &Corpus,
        profile: &KeywordProfile,
        any_config: &PspConfig,
    ) -> Vec<u32> {
        let content_query = profile_query(profile, any_config);
        self.index.content_candidates(corpus, &content_query)
    }

    /// Computes the full SAI list for a keyword database and configuration in
    /// one indexed pass, fanning out over keyword profiles with `rayon`.
    fn sai_list(&self, corpus: &Corpus, db: &KeywordDatabase, config: &PspConfig) -> SaiList {
        let profiles: Vec<&KeywordProfile> = db.iter().collect();
        let entries: Vec<SaiEntry> = profiles
            .par_iter()
            .map(|profile| self.score_profile(corpus, profile, config))
            .collect();
        SaiList::from_entries(entries)
    }

    /// Computes one SAI list per configuration against the same corpus.
    fn sai_lists(
        &self,
        corpus: &Corpus,
        db: &KeywordDatabase,
        configs: &[PspConfig],
    ) -> Vec<SaiList> {
        let profiles: Vec<&KeywordProfile> = db.iter().collect();
        if configs.is_empty() {
            return Vec::new();
        }
        if profiles.is_empty() {
            return configs
                .iter()
                .map(|_| SaiList::from_entries(Vec::new()))
                .collect();
        }
        // One parallel job per profile: resolve the (config-independent)
        // content candidates once — scene filter hoisted — then score every
        // configuration against them.
        let per_profile: Vec<Vec<SaiEntry>> = profiles
            .par_iter()
            .map(|profile| {
                let batch = BatchCandidates::hoist(self, corpus, profile, &configs[0]);
                configs
                    .iter()
                    .map(|config| {
                        let query = profile_query(profile, config);
                        self.aggregate(corpus, profile, config, batch.for_config(config, &query))
                    })
                    .collect()
            })
            .collect();
        transpose_to_lists(per_profile, configs.len())
    }

    /// The (cached) sweep plan for a database and base configuration — built
    /// on first use, reused while the key matches, invalidated by ingest via
    /// the generation counter.
    fn sweep_plan(
        &self,
        corpus: &Corpus,
        db: &KeywordDatabase,
        base_config: &PspConfig,
    ) -> std::sync::Arc<sweep::SweepPlan> {
        self.plans.plan_for(self, corpus, db, base_config)
    }

    /// Computes one SAI list per window through the sweep plan — see
    /// [`SaiScorer::sai_sweep`].
    fn sai_sweep(
        &self,
        corpus: &Corpus,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        windows: &[Option<DateWindow>],
    ) -> Vec<SaiList> {
        let profiles: Vec<&KeywordProfile> = db.iter().collect();
        if windows.is_empty() {
            return Vec::new();
        }
        if profiles.is_empty() {
            return windows
                .iter()
                .map(|_| SaiList::from_entries(Vec::new()))
                .collect();
        }
        let weights = base_config.sai_weights;
        let plan = self.sweep_plan(corpus, db, base_config);
        // One parallel job per profile, resolving the whole window batch
        // against its prefix-summed columns (scrambled windows share one
        // distribution pass).
        let jobs: Vec<(usize, &KeywordProfile)> = profiles.into_iter().enumerate().collect();
        let per_profile: Vec<Vec<SaiEntry>> = jobs
            .par_iter()
            .map(|(p, profile)| plan.profiles[*p].entries_for(profile, weights, windows))
            .collect();
        transpose_to_lists(per_profile, windows.len())
    }
}

/// The hoisted per-profile filter state of the batch (`sai_lists`) paths:
/// a profile's content candidates plus the subset passing the base
/// configuration's window-invariant *scene* filter (region / application),
/// each resolved once per profile.  Every configuration sharing that scene
/// then pays only the window predicate per candidate; a configuration with a
/// different scene falls back to the full metadata filter.
///
/// Both batch entry points — the single-engine `EngineCore::sai_lists` and
/// the sharded `ShardedEngine::sai_lists` — route through this one type, so
/// the hoist decision cannot drift between the two bit-identical paths.
struct BatchCandidates<'a> {
    index: &'a CorpusIndex,
    /// All content candidates, ascending.
    candidates: Vec<u32>,
    /// The candidates passing the base configuration's scene, ascending.
    scene_candidates: Vec<u32>,
    /// The scene the hoisted subset was filtered with.
    region: socialsim::post::Region,
    application: socialsim::post::TargetApplication,
}

impl<'a> BatchCandidates<'a> {
    /// Resolves one profile's content candidates and hoists the scene filter
    /// of `base_config` (by convention the batch's first configuration).
    fn hoist(
        core: &'a EngineCore,
        corpus: &Corpus,
        profile: &KeywordProfile,
        base_config: &PspConfig,
    ) -> Self {
        let candidates = core.content_candidates_for(corpus, profile, base_config);
        let base_query = profile_query(profile, base_config);
        let scene_candidates = candidates
            .iter()
            .copied()
            .filter(|id| core.index.matches_scene(*id, &base_query))
            .collect();
        Self {
            index: &core.index,
            candidates,
            scene_candidates,
            region: base_config.region,
            application: base_config.application,
        }
    }

    /// The candidate ids passing `config`'s metadata constraints, ascending:
    /// the hoisted scene subset under a window-only check when `config`
    /// shares the base scene, the full per-candidate metadata filter
    /// otherwise.  `query` must be `profile_query(profile, config)`.
    fn for_config<'q>(
        &'q self,
        config: &PspConfig,
        query: &'q Query,
    ) -> impl Iterator<Item = u32> + 'q {
        if config.region == self.region && config.application == self.application {
            let window = config.window;
            EitherIter::Scene(
                self.scene_candidates
                    .iter()
                    .copied()
                    .filter(move |id| self.index.in_window(*id, window)),
            )
        } else {
            EitherIter::Full(
                self.candidates
                    .iter()
                    .copied()
                    .filter(move |id| self.index.matches_metadata(*id, query)),
            )
        }
    }
}

/// A two-armed iterator so [`BatchCandidates::for_config`] can return either
/// filter shape as one `impl Iterator`.
enum EitherIter<A, B> {
    Scene(A),
    Full(B),
}

impl<A: Iterator<Item = u32>, B: Iterator<Item = u32>> Iterator for EitherIter<A, B> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            EitherIter::Scene(iter) => iter.next(),
            EitherIter::Full(iter) => iter.next(),
        }
    }
}

/// Transposes a profile-major entry grid into one finished list per
/// configuration/window, preserving keyword-database order within each list —
/// the shared tail of the batch and sweep paths.
fn transpose_to_lists(per_profile: Vec<Vec<SaiEntry>>, lists: usize) -> Vec<SaiList> {
    let mut per_config: Vec<Vec<SaiEntry>> = (0..lists)
        .map(|_| Vec::with_capacity(per_profile.len()))
        .collect();
    for row in per_profile {
        for (c, entry) in row.into_iter().enumerate() {
            per_config[c].push(entry);
        }
    }
    per_config.into_iter().map(SaiList::from_entries).collect()
}

/// An indexed, parallel SAI scoring engine bound to one corpus snapshot.
///
/// Build it once per corpus ([`ScoringEngine::new`]), then compute as many SAI
/// lists as needed — per keyword database, per configuration, per analysis
/// window — without ever rescanning posts or re-running the text pipeline.
/// For a corpus that keeps growing while being served, use [`LiveEngine`]
/// instead.
#[derive(Debug)]
pub struct ScoringEngine<'c> {
    corpus: &'c Corpus,
    core: EngineCore,
}

impl<'c> ScoringEngine<'c> {
    /// Builds the inverted index; per-post text signals are computed lazily on
    /// first use (see [`precompute_signals`](Self::precompute_signals)).
    #[must_use]
    pub fn new(corpus: &'c Corpus) -> Self {
        Self::with_pipeline(corpus, TextPipeline::new())
    }

    /// Builds an engine whose text mining runs through a custom pipeline —
    /// a custom [`textmine::IntentLexicon`] via
    /// [`TextPipeline::with_lexicon`], or the frozen multi-pass baseline via
    /// [`TextPipeline::reference`] (used by the `text_pipeline` bench).
    #[must_use]
    pub fn with_pipeline(corpus: &'c Corpus, pipeline: TextPipeline) -> Self {
        Self {
            corpus,
            core: EngineCore::with_pipeline(corpus, pipeline),
        }
    }

    /// Exports the memoised per-post text signals as a persistable
    /// [`SignalCacheFile`], materialising any signal not yet paid for.  Save
    /// it alongside the serialised corpus
    /// ([`socialsim::corpus::Corpus::save_json`]) and feed it to
    /// [`load_signal_cache`](Self::load_signal_cache) after a restart to skip
    /// text mining entirely.
    #[must_use]
    pub fn export_signal_cache(&self) -> SignalCacheFile {
        self.core.export_cache(self.corpus)
    }

    /// Installs a previously exported signal cache after validating its
    /// version, lexicon, length and every post id against this engine's
    /// corpus.  Returns the number of posts warmed from the cache.
    ///
    /// # Errors
    ///
    /// Returns a [`SignalCacheError`] (and installs nothing) when the cache
    /// does not exactly describe this corpus.
    pub fn load_signal_cache(&self, cache: &SignalCacheFile) -> Result<usize, SignalCacheError> {
        self.core.load_cache(self.corpus, cache)
    }

    /// Eagerly materialises the signals of every post, fanning out over worker
    /// threads.  Useful before a throughput-critical serving phase; otherwise
    /// signals fill in lazily as queries touch posts.
    pub fn precompute_signals(&self) {
        self.core.precompute_signals(self.corpus);
    }

    /// The corpus the engine is bound to.
    #[must_use]
    pub fn corpus(&self) -> &'c Corpus {
        self.corpus
    }

    /// The underlying inverted index.
    #[must_use]
    pub fn index(&self) -> &CorpusIndex {
        &self.core.index
    }

    /// The query the SAI computation issues for one keyword profile under one
    /// configuration (hashtag OR keyword content, conjunctive scene filters).
    #[must_use]
    pub fn profile_query(profile: &KeywordProfile, config: &PspConfig) -> Query {
        profile_query(profile, config)
    }

    /// Computes the full SAI list for a keyword database and configuration in
    /// one indexed pass, fanning out over keyword profiles with `rayon`.
    #[must_use]
    pub fn sai_list(&self, db: &KeywordDatabase, config: &PspConfig) -> SaiList {
        self.core.sai_list(self.corpus, db, config)
    }

    /// Computes one SAI list per configuration against the same corpus — the
    /// batch entry point for window sweeps (monitoring, Figure 9 comparisons).
    ///
    /// A keyword's content candidates do not depend on the configuration, so
    /// they are resolved once per profile and only the cheap metadata filter
    /// (region / application / window) and aggregation re-run per
    /// configuration.  Always returns exactly one list per configuration
    /// (empty lists for an empty database).
    #[must_use]
    pub fn sai_lists(&self, db: &KeywordDatabase, configs: &[PspConfig]) -> Vec<SaiList> {
        self.core.sai_lists(self.corpus, db, configs)
    }

    /// Computes one SAI list per [`WindowAxis`] entry against one shared
    /// base configuration, through the prefix-summed sweep plan —
    /// bit-identical to (and much faster than) per-window
    /// [`sai_lists`](Self::sai_lists); see [`SaiScorer::sai_windows`].
    #[must_use]
    pub fn sai_windows(
        &self,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        axis: &WindowAxis,
    ) -> Vec<SaiList> {
        self.core
            .sai_sweep(self.corpus, db, base_config, axis.as_options())
    }

    /// Deprecated spelling of [`sai_windows`](Self::sai_windows) over
    /// concrete windows.
    #[deprecated(since = "0.2.0", note = "use sai_windows with WindowAxis::each")]
    #[must_use]
    pub fn sai_sweep(
        &self,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        windows: &[DateWindow],
    ) -> Vec<SaiList> {
        self.sai_windows(db, base_config, &WindowAxis::each(windows))
    }

    /// Deprecated spelling of [`sai_windows`](Self::sai_windows) over
    /// optional (`None` = full-history) windows.
    #[deprecated(since = "0.2.0", note = "use sai_windows with WindowAxis::spans")]
    #[must_use]
    pub fn sai_sweep_opt(
        &self,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        windows: &[Option<DateWindow>],
    ) -> Vec<SaiList> {
        self.sai_windows(db, base_config, &WindowAxis::spans(windows))
    }
}

impl SaiScorer for ScoringEngine<'_> {
    fn sai_list(&self, db: &KeywordDatabase, config: &PspConfig) -> SaiList {
        ScoringEngine::sai_list(self, db, config)
    }

    fn sai_lists(&self, db: &KeywordDatabase, configs: &[PspConfig]) -> Vec<SaiList> {
        ScoringEngine::sai_lists(self, db, configs)
    }

    fn sai_windows(
        &self,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        axis: &WindowAxis,
    ) -> Vec<SaiList> {
        ScoringEngine::sai_windows(self, db, base_config, axis)
    }
}

/// An indexed SAI scoring engine that **owns** its corpus and stays warm under
/// streaming ingestion.
///
/// Where [`ScoringEngine`] is bound to a frozen snapshot, a `LiveEngine`
/// interleaves [`ingest`](Self::ingest) with scoring: each batch of posts is
/// appended to the corpus, the inverted index is extended in place
/// ([`CorpusIndex::append`], amortised O(batch)), and the memoised signal
/// cache grows by exactly the batch — signals already paid for are never
/// recomputed, rebuilt or wiped.  Scoring after an append is bit-identical to
/// rebuilding a fresh engine over the grown corpus (property-tested), at a
/// fraction of the cost (see the `engine_ingest` bench).
///
/// ```
/// use psp::config::PspConfig;
/// use psp::engine::LiveEngine;
/// use psp::keyword_db::KeywordDatabase;
/// use socialsim::scenario;
///
/// let seed = scenario::excavator_europe(7);
/// let (db, config) = (KeywordDatabase::excavator_seed(), PspConfig::excavator_europe());
/// let mut engine = LiveEngine::new(seed);
/// let before = engine.sai_list(&db, &config);
/// let receipt = engine.ingest(scenario::excavator_europe(8).posts().to_vec());
/// assert!(receipt.appended > 0 && receipt.generation == 1);
/// let after = engine.sai_list(&db, &config);
/// assert!(after.top().unwrap().posts >= before.top().unwrap().posts);
/// ```
#[derive(Debug, Clone)]
pub struct LiveEngine {
    corpus: Corpus,
    core: EngineCore,
}

impl LiveEngine {
    /// Builds a live engine over an initial corpus (which may be empty).
    #[must_use]
    pub fn new(corpus: Corpus) -> Self {
        Self::with_pipeline(corpus, TextPipeline::new())
    }

    /// Builds a live engine with a custom text pipeline — see
    /// [`ScoringEngine::with_pipeline`].
    #[must_use]
    pub fn with_pipeline(corpus: Corpus, pipeline: TextPipeline) -> Self {
        let core = EngineCore::with_pipeline(&corpus, pipeline);
        Self { corpus, core }
    }

    /// Exports the memoised per-post text signals as a persistable
    /// [`SignalCacheFile`] — see [`ScoringEngine::export_signal_cache`].
    #[must_use]
    pub fn export_signal_cache(&self) -> SignalCacheFile {
        self.core.export_cache(&self.corpus)
    }

    /// Installs a previously exported signal cache — see
    /// [`ScoringEngine::load_signal_cache`].
    ///
    /// # Errors
    ///
    /// Returns a [`SignalCacheError`] (and installs nothing) when the cache
    /// does not exactly describe this engine's current corpus.
    pub fn load_signal_cache(&self, cache: &SignalCacheFile) -> Result<usize, SignalCacheError> {
        self.core.load_cache(&self.corpus, cache)
    }

    /// Ingests a batch of posts: appends them to the corpus, extends the
    /// inverted index in place and grows the signal cache by exactly the
    /// batch.  Returns an [`IngestReceipt`] stamping the number of appended
    /// posts with the generation that publishes them.
    ///
    /// Amortised O(batch) — the posts already indexed are never rescanned, and
    /// their memoised text signals stay untouched (posts are immutable and ids
    /// append-only, so nothing previously cached can be affected).  A
    /// non-empty batch bumps [`generation`](Self::generation) by one.
    pub fn ingest(&mut self, batch: impl IntoIterator<Item = Post>) -> IngestReceipt {
        let before = self.corpus.len();
        for post in batch {
            self.corpus.push(post);
        }
        let appended = self.corpus.len() - before;
        self.core.append(&self.corpus, appended);
        IngestReceipt {
            appended,
            generation: self.core.generation,
        }
    }

    /// Number of non-empty ingest batches absorbed since construction.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.core.generation
    }

    /// The owned corpus, including every ingested post.
    #[must_use]
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The underlying inverted index.
    #[must_use]
    pub fn index(&self) -> &CorpusIndex {
        &self.core.index
    }

    /// Number of posts currently served.
    #[must_use]
    pub fn post_count(&self) -> usize {
        self.corpus.len()
    }

    /// Eagerly materialises the signals of every post, fanning out over worker
    /// threads.  Already-memoised posts are skipped (their `OnceLock` is
    /// filled), so calling this after each ingest warms only the new batch.
    pub fn precompute_signals(&self) {
        self.core.precompute_signals(&self.corpus);
    }

    /// Computes the full SAI list for a keyword database and configuration —
    /// see [`ScoringEngine::sai_list`].
    #[must_use]
    pub fn sai_list(&self, db: &KeywordDatabase, config: &PspConfig) -> SaiList {
        self.core.sai_list(&self.corpus, db, config)
    }

    /// Computes one SAI list per configuration — see
    /// [`ScoringEngine::sai_lists`].
    #[must_use]
    pub fn sai_lists(&self, db: &KeywordDatabase, configs: &[PspConfig]) -> Vec<SaiList> {
        self.core.sai_lists(&self.corpus, db, configs)
    }

    /// Computes one SAI list per [`WindowAxis`] entry through the sweep plan
    /// — see [`SaiScorer::sai_windows`].  The plan survives across calls on
    /// this warm engine and is invalidated exactly when
    /// [`ingest`](Self::ingest) absorbs a non-empty batch (the generation
    /// counter is the key), so a monitoring loop pays the plan build once per
    /// ingest, not per re-evaluation.
    #[must_use]
    pub fn sai_windows(
        &self,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        axis: &WindowAxis,
    ) -> Vec<SaiList> {
        self.core
            .sai_sweep(&self.corpus, db, base_config, axis.as_options())
    }

    /// Deprecated spelling of [`sai_windows`](Self::sai_windows) over
    /// concrete windows.
    #[deprecated(since = "0.2.0", note = "use sai_windows with WindowAxis::each")]
    #[must_use]
    pub fn sai_sweep(
        &self,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        windows: &[DateWindow],
    ) -> Vec<SaiList> {
        self.sai_windows(db, base_config, &WindowAxis::each(windows))
    }

    /// Deprecated spelling of [`sai_windows`](Self::sai_windows) over
    /// optional (`None` = full-history) windows.
    #[deprecated(since = "0.2.0", note = "use sai_windows with WindowAxis::spans")]
    #[must_use]
    pub fn sai_sweep_opt(
        &self,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        windows: &[Option<DateWindow>],
    ) -> Vec<SaiList> {
        self.sai_windows(db, base_config, &WindowAxis::spans(windows))
    }
}

impl SaiScorer for LiveEngine {
    fn sai_list(&self, db: &KeywordDatabase, config: &PspConfig) -> SaiList {
        LiveEngine::sai_list(self, db, config)
    }

    fn sai_lists(&self, db: &KeywordDatabase, configs: &[PspConfig]) -> Vec<SaiList> {
        LiveEngine::sai_lists(self, db, configs)
    }

    fn sai_windows(
        &self,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        axis: &WindowAxis,
    ) -> Vec<SaiList> {
        LiveEngine::sai_windows(self, db, base_config, axis)
    }
}

impl StreamingScorer for LiveEngine {
    fn ingest_batch(&mut self, batch: Vec<Post>) -> IngestReceipt {
        self.ingest(batch)
    }

    fn post_count(&self) -> usize {
        LiveEngine::post_count(self)
    }

    fn generation(&self) -> u64 {
        LiveEngine::generation(self)
    }

    fn export_signal_cache(&self) -> SignalCacheFile {
        LiveEngine::export_signal_cache(self)
    }

    fn snapshot_corpus(&self) -> Corpus {
        self.corpus.clone()
    }

    fn restore_generation(&mut self, generation: u64) {
        self.core.generation = generation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialsim::scenario;
    use socialsim::time::DateWindow;

    #[test]
    fn engine_matches_the_naive_reference_exactly() {
        let corpus = scenario::passenger_car_europe(42);
        let db = KeywordDatabase::passenger_car_seed();
        let config = PspConfig::passenger_car_europe();
        let engine = ScoringEngine::new(&corpus);
        assert_eq!(
            engine.sai_list(&db, &config),
            SaiList::compute_naive(&corpus, &db, &config)
        );
    }

    #[test]
    fn engine_matches_naive_with_window_and_filter() {
        let corpus = scenario::excavator_europe(7);
        let db = KeywordDatabase::excavator_seed();
        let config = PspConfig::excavator_europe()
            .with_window(DateWindow::years(2020, 2022))
            .with_poisoning_filter(0.25);
        let engine = ScoringEngine::new(&corpus);
        assert_eq!(
            engine.sai_list(&db, &config),
            SaiList::compute_naive(&corpus, &db, &config)
        );
    }

    #[test]
    fn batch_lists_match_individual_lists() {
        let corpus = scenario::passenger_car_europe(42);
        let db = KeywordDatabase::passenger_car_seed();
        let engine = ScoringEngine::new(&corpus);
        let configs: Vec<PspConfig> = (2018..2023)
            .map(|y| PspConfig::passenger_car_europe().with_window(DateWindow::years(y, y + 1)))
            .collect();
        let batch = engine.sai_lists(&db, &configs);
        assert_eq!(batch.len(), configs.len());
        for (config, list) in configs.iter().zip(&batch) {
            assert_eq!(*list, engine.sai_list(&db, config));
        }
    }

    #[test]
    fn empty_corpus_and_empty_db_degrade_gracefully() {
        let corpus = Corpus::new();
        let engine = ScoringEngine::new(&corpus);
        let sai = engine.sai_list(
            &KeywordDatabase::excavator_seed(),
            &PspConfig::excavator_europe(),
        );
        assert!(sai
            .entries()
            .iter()
            .all(|e| e.sai == 0.0 && e.probability == 0.0));
        let none = engine.sai_list(&KeywordDatabase::new(), &PspConfig::excavator_europe());
        assert!(none.is_empty());
        assert!(engine.sai_lists(&KeywordDatabase::new(), &[]).is_empty());
    }

    #[test]
    fn batch_returns_one_list_per_config_even_for_an_empty_database() {
        let corpus = scenario::excavator_europe(7);
        let engine = ScoringEngine::new(&corpus);
        let configs = [
            PspConfig::excavator_europe(),
            PspConfig::excavator_europe().with_window(DateWindow::years(2020, 2021)),
        ];
        let lists = engine.sai_lists(&KeywordDatabase::new(), &configs);
        assert_eq!(lists.len(), configs.len());
        assert!(lists.iter().all(SaiList::is_empty));
    }

    #[test]
    fn live_engine_ingest_matches_a_cold_rebuild_bit_for_bit() {
        let full = scenario::excavator_europe(7);
        let posts = full.posts().to_vec();
        let db = KeywordDatabase::excavator_seed();
        let config = PspConfig::excavator_europe();

        let mut live = LiveEngine::new(Corpus::new());
        for chunk in posts.chunks(23) {
            live.ingest(chunk.to_vec());
        }
        assert_eq!(live.post_count(), full.posts().len());
        // Append-then-score is bit-identical to rebuild-then-score and to the
        // naive oracle (same corpus order, same fold order).
        assert_eq!(
            live.sai_list(&db, &config),
            ScoringEngine::new(&full).sai_list(&db, &config)
        );
        assert_eq!(
            live.sai_list(&db, &config),
            SaiList::compute_naive(&full, &db, &config)
        );
    }

    #[test]
    fn live_engine_scores_between_ingests_without_losing_warmth() {
        let seed = scenario::excavator_europe(7);
        let extra = scenario::excavator_europe(8).posts().to_vec();
        let db = KeywordDatabase::excavator_seed();
        let config = PspConfig::excavator_europe();

        // Score (memoising signals), then ingest, then score again: the second
        // score must still equal a cold engine over the grown corpus.
        let mut live = LiveEngine::new(seed.clone());
        let warm_before = live.sai_list(&db, &config);
        assert_eq!(
            warm_before,
            ScoringEngine::new(&seed).sai_list(&db, &config)
        );
        live.ingest(extra.clone());

        let mut grown = seed;
        grown.extend(extra);
        assert_eq!(
            live.sai_list(&db, &config),
            ScoringEngine::new(&grown).sai_list(&db, &config)
        );
    }

    #[test]
    fn empty_ingest_does_not_bump_the_generation() {
        let mut live = LiveEngine::new(scenario::excavator_europe(7));
        assert_eq!(live.generation(), 0);
        let empty = live.ingest(Vec::new());
        assert_eq!(
            empty,
            IngestReceipt {
                appended: 0,
                generation: 0
            }
        );
        assert_eq!(live.generation(), 0);
        let receipt = live.ingest(scenario::excavator_europe(9).posts().to_vec());
        assert!(receipt.appended > 0);
        assert_eq!(receipt.generation, 1);
        assert_eq!(live.generation(), 1);
    }

    #[test]
    fn sweep_matches_per_window_batch_lists_bit_for_bit() {
        let corpus = scenario::passenger_car_europe(42);
        let db = KeywordDatabase::passenger_car_seed();
        let base = PspConfig::passenger_car_europe();
        let engine = ScoringEngine::new(&corpus);
        let windows: Vec<DateWindow> = (2015..2023).map(|y| DateWindow::years(y, y + 1)).collect();
        let configs: Vec<PspConfig> = windows
            .iter()
            .map(|w| base.clone().with_window(*w))
            .collect();
        assert_eq!(
            engine.sai_windows(&db, &base, &WindowAxis::each(&windows)),
            engine.sai_lists(&db, &configs)
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_sweep_forwarders_match_sai_windows_bit_for_bit() {
        let corpus = scenario::excavator_europe(7);
        let db = KeywordDatabase::excavator_seed();
        let base = PspConfig::excavator_europe();
        let engine = ScoringEngine::new(&corpus);
        let windows: Vec<DateWindow> = (2018..2023).map(|y| DateWindow::years(y, y + 1)).collect();
        let spans = [None, Some(DateWindow::years(2020, 2022))];
        // Inherent forwarders.
        assert_eq!(
            engine.sai_sweep(&db, &base, &windows),
            engine.sai_windows(&db, &base, &WindowAxis::each(&windows))
        );
        assert_eq!(
            engine.sai_sweep_opt(&db, &base, &spans),
            engine.sai_windows(&db, &base, &WindowAxis::spans(&spans))
        );
        // Trait-level forwarders (dyn dispatch, default bodies).
        let scorer: &dyn SaiScorer = &engine;
        assert_eq!(
            scorer.sai_sweep(&db, &base, &windows),
            scorer.sai_windows(&db, &base, &WindowAxis::each(&windows))
        );
        assert_eq!(
            scorer.sai_sweep_opt(&db, &base, &spans),
            scorer.sai_windows(&db, &base, &WindowAxis::spans(&spans))
        );
    }

    #[test]
    fn window_axis_builders_agree_with_the_bulk_constructors() {
        let a = DateWindow::years(2019, 2020);
        let b = DateWindow::years(2021, 2022);
        assert_eq!(WindowAxis::each(&[a, b]).as_options(), &[Some(a), Some(b)]);
        assert_eq!(
            WindowAxis::new().window(a).full_history().window(b),
            WindowAxis::spans(&[Some(a), None, Some(b)])
        );
        assert_eq!(
            WindowAxis::from(vec![None, Some(a)]),
            WindowAxis::new().full_history().window(a)
        );
        assert!(WindowAxis::new().is_empty());
        assert_eq!(WindowAxis::each(&[a, b]).len(), 2);
    }

    #[test]
    fn sweep_with_optional_windows_covers_the_full_history() {
        let corpus = scenario::excavator_europe(7);
        let db = KeywordDatabase::excavator_seed();
        let base = PspConfig::excavator_europe();
        let engine = ScoringEngine::new(&corpus);
        let recent = DateWindow::years(2021, 2023);
        let axis = WindowAxis::new().full_history().window(recent);
        let swept = engine.sai_windows(&db, &base, &axis);
        assert_eq!(swept[0], engine.sai_list(&db, &base));
        assert_eq!(
            swept[1],
            engine.sai_list(&db, &base.clone().with_window(recent))
        );
        // A window already set on the base config is replaced per entry.
        let windowed_base = base.clone().with_window(DateWindow::years(2019, 2019));
        assert_eq!(
            engine.sai_windows(&db, &windowed_base, &WindowAxis::new().full_history()),
            vec![engine.sai_list(&db, &base)]
        );
    }

    #[test]
    fn sweep_edge_cases_degrade_like_the_batch_path() {
        let corpus = scenario::excavator_europe(7);
        let engine = ScoringEngine::new(&corpus);
        let base = PspConfig::excavator_europe();
        // No windows -> no lists.
        assert!(engine
            .sai_windows(
                &KeywordDatabase::excavator_seed(),
                &base,
                &WindowAxis::new()
            )
            .is_empty());
        // Empty database -> one empty list per window.
        let lists = engine.sai_windows(
            &KeywordDatabase::new(),
            &base,
            &WindowAxis::each(&[DateWindow::years(2019, 2020), DateWindow::years(2021, 2022)]),
        );
        assert_eq!(lists.len(), 2);
        assert!(lists.iter().all(SaiList::is_empty));
        // Windows entirely outside the data -> zero evidence, not a panic.
        let empty = engine.sai_windows(
            &KeywordDatabase::excavator_seed(),
            &base,
            &WindowAxis::each(&[DateWindow::years(1990, 1991)]),
        );
        assert!(empty[0]
            .entries()
            .iter()
            .all(|e| e.posts == 0 && e.sai == 0.0));
    }

    #[test]
    fn sweep_plan_is_reused_across_calls_and_rebuilt_on_key_change() {
        let corpus = scenario::excavator_europe(7);
        let db = KeywordDatabase::excavator_seed();
        let base = PspConfig::excavator_europe();
        let engine = ScoringEngine::new(&corpus);
        assert!(!engine.core.plans.is_populated());
        let first = engine.core.sweep_plan(&corpus, &db, &base);
        assert!(engine.core.plans.is_populated());
        // Same key — the identical plan object is reused, even when the base
        // config differs in its window or SAI weights (both are resolved at
        // sweep time, not baked into the plan).
        let second = engine.core.sweep_plan(
            &corpus,
            &db,
            &base.clone().with_window(DateWindow::years(2020, 2021)),
        );
        assert!(std::sync::Arc::ptr_eq(&first, &second));
        let reweighted = engine.core.sweep_plan(
            &corpus,
            &db,
            &base
                .clone()
                .with_weights(crate::config::SaiWeights::views_only()),
        );
        assert!(std::sync::Arc::ptr_eq(&first, &reweighted));
        // A different scene (here: a poisoning filter) rebuilds.
        let filtered =
            engine
                .core
                .sweep_plan(&corpus, &db, &base.clone().with_poisoning_filter(0.25));
        assert!(!std::sync::Arc::ptr_eq(&first, &filtered));
        // The filtered plan admits at most as many candidate rows.
        assert!(filtered.candidate_rows() <= first.candidate_rows());
    }

    #[test]
    fn ingest_invalidates_the_live_sweep_plan() {
        let seed = scenario::excavator_europe(7);
        let db = KeywordDatabase::excavator_seed();
        let base = PspConfig::excavator_europe();
        let windows: Vec<DateWindow> = (2018..2024).map(|y| DateWindow::years(y, y)).collect();

        let mut live = LiveEngine::new(seed);
        let before = live.core.sweep_plan(live.corpus(), &db, &base);
        // An empty ingest leaves the plan valid...
        live.ingest(Vec::new());
        assert!(std::sync::Arc::ptr_eq(
            &before,
            &live.core.sweep_plan(live.corpus(), &db, &base)
        ));
        // ...a real batch invalidates it, and the re-planned sweep matches a
        // cold engine over the grown corpus bit for bit.
        live.ingest(scenario::excavator_europe(8).posts().to_vec());
        let after = live.core.sweep_plan(live.corpus(), &db, &base);
        assert!(!std::sync::Arc::ptr_eq(&before, &after));
        let cold = ScoringEngine::new(live.corpus());
        let axis = WindowAxis::each(&windows);
        assert_eq!(
            live.sai_windows(&db, &base, &axis),
            cold.sai_windows(&db, &base, &axis)
        );
    }

    #[test]
    fn alternating_scenes_keep_both_plans_warm() {
        let corpus = scenario::excavator_europe(7);
        let db = KeywordDatabase::excavator_seed();
        let base = PspConfig::excavator_europe();
        let filtered = base.clone().with_poisoning_filter(0.25);
        let engine = ScoringEngine::new(&corpus);
        let plan_a = engine.core.sweep_plan(&corpus, &db, &base);
        let plan_b = engine.core.sweep_plan(&corpus, &db, &filtered);
        // Alternate several times: both plans stay cached.  The single-slot
        // cache this replaced re-planned on every call here.
        for _ in 0..3 {
            assert!(std::sync::Arc::ptr_eq(
                &plan_a,
                &engine.core.sweep_plan(&corpus, &db, &base)
            ));
            assert!(std::sync::Arc::ptr_eq(
                &plan_b,
                &engine.core.sweep_plan(&corpus, &db, &filtered)
            ));
        }
        assert_eq!(engine.core.plans.build_count(), 2);
    }

    #[test]
    fn alternating_databases_keep_their_plans_warm() {
        let corpus = scenario::excavator_europe(7);
        let base = PspConfig::excavator_europe();
        let db_a = KeywordDatabase::excavator_seed();
        let db_b = KeywordDatabase::passenger_car_seed();
        let engine = ScoringEngine::new(&corpus);
        let plan_a = engine.core.sweep_plan(&corpus, &db_a, &base);
        let plan_b = engine.core.sweep_plan(&corpus, &db_b, &base);
        for _ in 0..3 {
            assert!(std::sync::Arc::ptr_eq(
                &plan_a,
                &engine.core.sweep_plan(&corpus, &db_a, &base)
            ));
            assert!(std::sync::Arc::ptr_eq(
                &plan_b,
                &engine.core.sweep_plan(&corpus, &db_b, &base)
            ));
        }
        assert_eq!(engine.core.plans.build_count(), 2);
    }

    #[test]
    fn the_plan_cache_is_bounded_with_lru_eviction() {
        let corpus = scenario::excavator_europe(7);
        let db = KeywordDatabase::excavator_seed();
        let engine = ScoringEngine::new(&corpus);
        // Distinct credibility thresholds give distinct plan keys.
        let scene =
            |i: usize| PspConfig::excavator_europe().with_poisoning_filter(0.01 * (i + 1) as f64);
        let overflow = sweep::PLAN_CACHE_CAPACITY + 1;
        for i in 0..overflow {
            engine.core.sweep_plan(&corpus, &db, &scene(i));
        }
        assert_eq!(engine.core.plans.build_count(), overflow as u64);
        // The most recent scene is still cached...
        engine.core.sweep_plan(&corpus, &db, &scene(overflow - 1));
        assert_eq!(engine.core.plans.build_count(), overflow as u64);
        // ...while the least recently used one was evicted and rebuilds.
        engine.core.sweep_plan(&corpus, &db, &scene(0));
        assert_eq!(engine.core.plans.build_count(), overflow as u64 + 1);
    }

    #[test]
    fn a_matrix_builds_one_plan_per_database_and_scene() {
        let corpus = scenario::excavator_europe(7);
        let engine = ScoringEngine::new(&corpus);
        let base = PspConfig::excavator_europe();
        let windows: Vec<DateWindow> = (2018..2022).map(|y| DateWindow::years(y, y + 1)).collect();
        let spec = MatrixSpec::new()
            .scenario("excavator", KeywordDatabase::excavator_seed())
            .scenario("car", KeywordDatabase::passenger_car_seed())
            .config("balanced", base.clone())
            .config(
                "views-only",
                base.clone()
                    .with_weights(crate::config::SaiWeights::views_only()),
            )
            .config("filtered", base.clone().with_poisoning_filter(0.25))
            .windows(&windows);
        let results = engine.sai_matrix(&spec);
        assert_eq!(results.len(), spec.cell_count());
        // 2 databases × 2 scenes (balanced and views-only share a plan key;
        // the poisoning filter is its own scene): 4 plans for 24 cells.
        assert_eq!(engine.core.plans.build_count(), 4);
        // Re-running the whole matrix reuses every plan.
        let again = engine.sai_matrix(&spec);
        assert_eq!(engine.core.plans.build_count(), 4);
        assert_eq!(results, again);
    }

    #[test]
    fn an_empty_matrix_returns_no_cells_without_planning() {
        let corpus = scenario::excavator_europe(7);
        let engine = ScoringEngine::new(&corpus);
        let no_scenarios = MatrixSpec::new()
            .config("base", PspConfig::excavator_europe())
            .window(DateWindow::years(2019, 2021));
        assert!(engine.sai_matrix(&no_scenarios).is_empty());
        let no_configs = MatrixSpec::new()
            .scenario("excavator", KeywordDatabase::excavator_seed())
            .window(DateWindow::years(2019, 2021));
        assert!(engine.sai_matrix(&no_configs).is_empty());
        assert_eq!(MatrixSpec::new().cell_count(), 0);
        assert!(engine.sai_matrix(&MatrixSpec::new()).is_empty());
        assert_eq!(engine.core.plans.build_count(), 0);
        assert!(!engine.core.plans.is_populated());
    }

    #[test]
    fn matrix_cells_match_the_naive_reference() {
        let corpus = scenario::excavator_europe(7);
        let engine = ScoringEngine::new(&corpus);
        let db = KeywordDatabase::excavator_seed();
        let configs = [
            PspConfig::excavator_europe(),
            PspConfig::excavator_europe().with_poisoning_filter(0.25),
        ];
        let window = DateWindow::years(2020, 2022);
        let spec = MatrixSpec::new()
            .scenario("excavator", db.clone())
            .config("balanced", configs[0].clone())
            .config("filtered", configs[1].clone())
            .full_history()
            .window(window);
        let results = engine.sai_matrix(&spec);
        assert_eq!(results.len(), 4);
        for (id, sai) in results.iter() {
            let mut config = configs[id.config].clone();
            config.window = [None, Some(window)][id.window];
            assert_eq!(*sai, SaiList::compute_naive(&corpus, &db, &config));
        }
    }

    #[test]
    fn ingest_invalidates_matrix_plans() {
        let mut live = LiveEngine::new(scenario::excavator_europe(7));
        let spec = MatrixSpec::new()
            .scenario("excavator", KeywordDatabase::excavator_seed())
            .config("base", PspConfig::excavator_europe())
            .config(
                "filtered",
                PspConfig::excavator_europe().with_poisoning_filter(0.25),
            )
            .window(DateWindow::years(2019, 2021));
        live.sai_matrix(&spec);
        assert_eq!(live.core.plans.build_count(), 2);
        live.sai_matrix(&spec);
        assert_eq!(live.core.plans.build_count(), 2);
        // A real ingest bumps the generation: the whole matrix re-plans, and
        // the result matches a cold engine over the grown corpus.
        live.ingest(scenario::excavator_europe(8).posts().to_vec());
        let after = live.sai_matrix(&spec);
        assert_eq!(live.core.plans.build_count(), 4);
        let cold = ScoringEngine::new(live.corpus());
        assert_eq!(after, cold.sai_matrix(&spec));
    }

    #[test]
    fn matrix_results_are_addressable_and_stream_in_cell_order() {
        let corpus = scenario::excavator_europe(7);
        let engine = ScoringEngine::new(&corpus);
        let spec = MatrixSpec::new()
            .scenario("excavator", KeywordDatabase::excavator_seed())
            .config("base", PspConfig::excavator_europe())
            .full_history()
            .window(DateWindow::years(2021, 2023));
        let mut streamed = Vec::new();
        engine.sai_matrix_stream(&spec, &mut |id, sai| streamed.push((id, sai)));
        let ids: Vec<CellId> = streamed.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, spec.cell_ids());
        let results = engine.sai_matrix(&spec);
        assert_eq!(results.scenario_label(0), Some("excavator"));
        assert_eq!(results.config_label(0), Some("base"));
        assert_eq!(results.window_count(), 2);
        for (id, sai) in &streamed {
            assert_eq!(results.cell(*id), Some(sai));
            assert_eq!(results.get(id.scenario, id.config, id.window), Some(sai));
        }
        // Out-of-range addresses answer None instead of panicking.
        assert!(results.get(1, 0, 0).is_none());
        assert!(results.get(0, 1, 0).is_none());
        assert!(results.get(0, 0, 2).is_none());
        assert_eq!(results.into_cells(), streamed);
    }

    #[test]
    fn live_engine_windows_match_snapshot_windows_after_ingest() {
        let seed = scenario::passenger_car_europe(42);
        let posts = seed.posts().to_vec();
        let (old, new) = posts.split_at(posts.len() / 2);
        let db = KeywordDatabase::passenger_car_seed();
        let configs: Vec<PspConfig> = (2016..2023)
            .map(|y| PspConfig::passenger_car_europe().with_window(DateWindow::years(y, y + 1)))
            .collect();

        let mut live = LiveEngine::new(Corpus::from_posts(old.to_vec()));
        live.ingest(new.to_vec());
        let snapshot = ScoringEngine::new(live.corpus());
        assert_eq!(
            live.sai_lists(&db, &configs),
            snapshot.sai_lists(&db, &configs)
        );
    }
}
