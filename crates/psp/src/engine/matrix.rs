//! The batch plane: one scheduler for (scenario × configuration × window)
//! cross-products.
//!
//! The paper's workflow is never "one scenario, one window": Figure-9
//! monitoring, PSP weight tuning and dynamic TARA all evaluate grids of
//! (keyword profile set, scene filter, weight configuration, time window)
//! over the same corpus.  A [`MatrixSpec`] names the full grid up front —
//! scenarios (keyword databases) × base configurations (scene filters and
//! weight sets) × an optional shared window grid — and
//! [`SaiScorer::sai_matrix`](super::SaiScorer::sai_matrix) resolves every
//! cell through one scheduler instead of hand-nested loops.
//!
//! The scheduler amortises shared work across the whole matrix:
//!
//! * cells sharing a (database, scene) pair — weight ablations, window grids
//!   — are scheduled **consecutively**, so they resolve against ONE sweep
//!   plan (see [`super::sweep`]); the bounded keyed `PlanCache` keeps the
//!   plans of a scenario rotation warm on top of that;
//! * within each (scenario, configuration) row the window axis rides the
//!   prefix-summed sweep plane, and on a
//!   [`ShardedEngine`](super::ShardedEngine) shard pruning applies per
//!   window — shard-pruned cells never plan;
//! * keyword profiles (and shards) fan out over worker threads via `rayon`,
//!   exactly as in the underlying sweep path.
//!
//! Results stream to the caller in deterministic [`CellId`] order
//! (scenario-major, then configuration, then window), and every cell is
//! **bit-identical** to the nested `sai_windows` / `sai_lists` /
//! `compute_naive` equivalents — float folds keep their ascending-post-id
//! order all the way through the shard-partial merge.

use crate::config::PspConfig;
use crate::keyword_db::KeywordDatabase;
use crate::sai::SaiList;
use serde::{Deserialize, Serialize};
use socialsim::time::DateWindow;

use super::sweep::PlanKey;
use super::{SaiScorer, WindowAxis};

/// The address of one cell in a [`MatrixSpec`] cross-product: indices into
/// the spec's scenario, configuration and window axes, in declaration order.
///
/// The derived ordering (scenario-major, then configuration, then window) is
/// exactly the order cells stream out of
/// [`SaiScorer::sai_matrix_stream`](super::SaiScorer::sai_matrix_stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId {
    /// Index into the spec's scenarios (keyword databases).
    pub scenario: usize,
    /// Index into the spec's base configurations.
    pub config: usize,
    /// Index into the spec's window grid (`0` when the grid is empty and each
    /// configuration's own window applies).
    pub window: usize,
}

/// A batch request: the cross-product of scenarios (keyword databases) ×
/// base configurations × an optional shared window grid.
///
/// * **Scenarios** carry the keyword databases — one per threat scenario
///   family under assessment.
/// * **Configurations** carry the scene filters (region, application,
///   credibility rule) and SAI weight sets — a weight-ablation study is one
///   scenario × many configurations.
/// * **Windows** optionally fix a shared analysis-window grid.  A non-empty
///   grid *replaces* each configuration's own window (mirroring
///   [`SaiScorer::sai_windows`](super::SaiScorer::sai_windows));
///   an empty grid means one cell per (scenario, configuration), evaluated
///   under the configuration's own window — so a 1×1 matrix with no grid is
///   exactly one `sai_list` call.
///
/// ```
/// use psp::config::{PspConfig, SaiWeights};
/// use psp::engine::{MatrixSpec, SaiScorer, ScoringEngine};
/// use psp::keyword_db::KeywordDatabase;
/// use socialsim::scenario;
/// use socialsim::time::DateWindow;
///
/// let corpus = scenario::excavator_europe(7);
/// let engine = ScoringEngine::new(&corpus);
/// let spec = MatrixSpec::new()
///     .scenario("excavator", KeywordDatabase::excavator_seed())
///     .config("balanced", PspConfig::excavator_europe())
///     .config(
///         "views-only",
///         PspConfig::excavator_europe().with_weights(SaiWeights::views_only()),
///     )
///     .full_history()
///     .window(DateWindow::years(2021, 2023));
/// let results = engine.sai_matrix(&spec);
/// assert_eq!(results.len(), 4); // 1 scenario × 2 configs × 2 windows
/// ```
#[derive(Debug, Clone, Default)]
pub struct MatrixSpec {
    scenarios: Vec<(String, KeywordDatabase)>,
    configs: Vec<(String, PspConfig)>,
    windows: Vec<Option<DateWindow>>,
}

impl MatrixSpec {
    /// An empty spec (no scenarios, no configurations, no window grid).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a scenario: a labelled keyword database.
    #[must_use]
    pub fn scenario(mut self, label: impl Into<String>, db: KeywordDatabase) -> Self {
        self.scenarios.push((label.into(), db));
        self
    }

    /// Adds a base configuration: a labelled scene filter + weight set.
    #[must_use]
    pub fn config(mut self, label: impl Into<String>, config: PspConfig) -> Self {
        self.configs.push((label.into(), config));
        self
    }

    /// Adds one analysis window to the shared grid.
    #[must_use]
    pub fn window(mut self, window: DateWindow) -> Self {
        self.windows.push(Some(window));
        self
    }

    /// Adds a full-history (unwindowed) entry to the shared grid.
    #[must_use]
    pub fn full_history(mut self) -> Self {
        self.windows.push(None);
        self
    }

    /// Adds a batch of analysis windows to the shared grid.
    #[must_use]
    pub fn windows(mut self, windows: &[DateWindow]) -> Self {
        self.windows.extend(windows.iter().copied().map(Some));
        self
    }

    /// Number of scenarios.
    #[must_use]
    pub fn scenario_count(&self) -> usize {
        self.scenarios.len()
    }

    /// Number of base configurations.
    #[must_use]
    pub fn config_count(&self) -> usize {
        self.configs.len()
    }

    /// Number of windows per (scenario, configuration) row: the grid length,
    /// or `1` when the grid is empty and each configuration's own window
    /// applies.
    #[must_use]
    pub fn window_count(&self) -> usize {
        if self.windows.is_empty() {
            1
        } else {
            self.windows.len()
        }
    }

    /// Total number of cells in the cross-product.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.scenario_count() * self.config_count() * self.window_count()
    }

    /// Every cell address, in the deterministic stream order (scenario-major,
    /// then configuration, then window).
    #[must_use]
    pub fn cell_ids(&self) -> Vec<CellId> {
        let mut ids = Vec::with_capacity(self.cell_count());
        for scenario in 0..self.scenario_count() {
            for config in 0..self.config_count() {
                for window in 0..self.window_count() {
                    ids.push(CellId {
                        scenario,
                        config,
                        window,
                    });
                }
            }
        }
        ids
    }

    /// Appends every entry of a [`WindowAxis`] to the shared grid.
    #[must_use]
    pub fn window_axis(mut self, axis: &WindowAxis) -> Self {
        self.windows.extend_from_slice(axis.as_options());
        self
    }

    /// The window axis one configuration's row resolves against: the shared
    /// grid if one was given, else the configuration's own window.
    fn effective_windows(&self, config: &PspConfig) -> WindowAxis {
        if self.windows.is_empty() {
            WindowAxis::from(vec![config.window])
        } else {
            WindowAxis::spans(&self.windows)
        }
    }
}

/// The resolved cells of one matrix run, addressable by [`CellId`] and
/// carrying the spec's labels for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixResults {
    scenario_labels: Vec<String>,
    config_labels: Vec<String>,
    window_count: usize,
    /// Dense cells in [`CellId`] order (scenario-major, then configuration,
    /// then window).
    cells: Vec<SaiList>,
}

impl MatrixResults {
    /// An empty result container shaped for `spec`, ready to absorb the
    /// streamed cells.
    pub(super) fn empty_for(spec: &MatrixSpec) -> Self {
        Self {
            scenario_labels: spec.scenarios.iter().map(|(l, _)| l.clone()).collect(),
            config_labels: spec.configs.iter().map(|(l, _)| l.clone()).collect(),
            window_count: spec.window_count(),
            cells: Vec::with_capacity(spec.cell_count()),
        }
    }

    /// Absorbs the next streamed cell.  Cells must arrive in [`CellId`]
    /// order — which [`run_matrix`] guarantees.
    pub(super) fn push(&mut self, id: CellId, sai: SaiList) {
        debug_assert_eq!(
            self.index_of(id),
            Some(self.cells.len()),
            "matrix cells must stream in CellId order"
        );
        self.cells.push(sai);
    }

    /// The dense index of a cell address, if it is in range.
    fn index_of(&self, id: CellId) -> Option<usize> {
        (id.scenario < self.scenario_labels.len()
            && id.config < self.config_labels.len()
            && id.window < self.window_count)
            .then(|| {
                (id.scenario * self.config_labels.len() + id.config) * self.window_count + id.window
            })
    }

    /// The cell at an address, if it exists.
    #[must_use]
    pub fn cell(&self, id: CellId) -> Option<&SaiList> {
        self.cells.get(self.index_of(id)?)
    }

    /// The cell at (scenario, configuration, window) indices, if it exists.
    #[must_use]
    pub fn get(&self, scenario: usize, config: usize, window: usize) -> Option<&SaiList> {
        self.cell(CellId {
            scenario,
            config,
            window,
        })
    }

    /// The label of a scenario axis entry.
    #[must_use]
    pub fn scenario_label(&self, scenario: usize) -> Option<&str> {
        self.scenario_labels.get(scenario).map(String::as_str)
    }

    /// The label of a configuration axis entry.
    #[must_use]
    pub fn config_label(&self, config: usize) -> Option<&str> {
        self.config_labels.get(config).map(String::as_str)
    }

    /// Number of windows per (scenario, configuration) row.
    #[must_use]
    pub fn window_count(&self) -> usize {
        self.window_count
    }

    /// Number of resolved cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the matrix resolved no cells at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over the cells in [`CellId`] order.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &SaiList)> {
        let configs = self.config_labels.len();
        let windows = self.window_count;
        self.cells.iter().enumerate().map(move |(i, sai)| {
            (
                CellId {
                    scenario: i / (configs * windows),
                    config: (i / windows) % configs,
                    window: i % windows,
                },
                sai,
            )
        })
    }

    /// Consumes the results into `(CellId, SaiList)` pairs in [`CellId`]
    /// order.
    #[must_use]
    pub fn into_cells(self) -> Vec<(CellId, SaiList)> {
        let configs = self.config_labels.len();
        let windows = self.window_count;
        self.cells
            .into_iter()
            .enumerate()
            .map(move |(i, sai)| {
                (
                    CellId {
                        scenario: i / (configs * windows),
                        config: (i / windows) % configs,
                        window: i % windows,
                    },
                    sai,
                )
            })
            .collect()
    }
}

/// Resolves every cell of `spec` against `engine`, streaming results to
/// `sink` in [`CellId`] order.
///
/// The scheduler's job is ordering, not computing: per scenario it groups the
/// configurations by their plan key ([`PlanKey`]) and schedules same-key
/// configurations consecutively, so every (database, scene) pair in the
/// matrix builds its sweep plan exactly once — structurally, independent of
/// the plan cache's capacity.  Each (scenario, configuration) row then rides
/// the engine's own sweep path ([`SaiScorer::sai_windows`]), which brings
/// the rayon fan-out, the prefix-summed window resolution and (on a sharded
/// engine) per-window shard pruning.
///
/// An empty scenario or configuration axis yields no cells and touches no
/// plan.
pub(super) fn run_matrix<E: SaiScorer + ?Sized>(
    engine: &E,
    spec: &MatrixSpec,
    sink: &mut dyn FnMut(CellId, SaiList),
) {
    if spec.scenarios.is_empty() || spec.configs.is_empty() {
        return;
    }
    for (s, (_, db)) in spec.scenarios.iter().enumerate() {
        // Group configuration indices by plan key, preserving first-appearance
        // order, so configurations sharing a (database, scene) resolve
        // consecutively against one warm plan.
        let mut groups: Vec<(PlanKey, Vec<usize>)> = Vec::new();
        for (c, (_, config)) in spec.configs.iter().enumerate() {
            let key = PlanKey::of(config);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(c),
                None => groups.push((key, vec![c])),
            }
        }
        let mut rows: Vec<Option<Vec<SaiList>>> = (0..spec.configs.len()).map(|_| None).collect();
        for (_, members) in &groups {
            for &c in members {
                let config = &spec.configs[c].1;
                let axis = spec.effective_windows(config);
                rows[c] = Some(engine.sai_windows(db, config, &axis));
            }
        }
        // Emit buffered rows in ascending (configuration, window) order.
        for (c, row) in rows.into_iter().enumerate() {
            let row = row.expect("every configuration was scheduled");
            for (w, sai) in row.into_iter().enumerate() {
                sink(
                    CellId {
                        scenario: s,
                        config: c,
                        window: w,
                    },
                    sai,
                );
            }
        }
    }
}
