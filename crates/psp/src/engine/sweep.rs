//! The sweep plane: prefix-summed columnar projections of per-post SAI
//! evidence, so an N-window monitoring sweep pays ~O(log n) per window for
//! everything that merges associatively.
//!
//! A windowed sweep (`MonitoringSeries`, Figure-9 comparisons, fleet sweeps)
//! scores the *same* scenario over many windows of one corpus.  The batch
//! `sai_lists` path already resolves each keyword's content candidates once,
//! but every window still re-walks the whole candidate set: an O(candidates)
//! date filter plus an O(matches) signal fold, per window.  The sweep plan
//! moves all window-invariant work into a build step and leaves per-window
//! work proportional to the window's *own* evidence:
//!
//! * **build once per (database, scene)** — for each keyword profile, the
//!   candidates passing the window-invariant filters (content, region,
//!   application, credibility) are projected into columns sorted by posting
//!   date (stable, so equal dates keep ascending post-id order).  The exact
//!   integer evidence (post / view / interaction counts) is prefix-summed;
//!   the order-sensitive evidence (intent scores, mined price runs) is stored
//!   per row, never prefix-summed, because float addition is not associative;
//! * **resolve per window** — two binary searches turn the window into a
//!   contiguous row range `[lo, hi)`; counts and integer sums fall out of
//!   prefix-sum subtractions in O(log n), and only the window's own rows are
//!   re-folded — in ascending post-id order, the exact order the per-window
//!   `sai_lists` fold uses — for the intent sum and the price stream.
//!
//! The result is **bit-identical** to scoring each window through
//! [`SaiScorer::sai_lists`](super::SaiScorer::sai_lists) and to the
//! `SaiList::compute_naive` oracle: integer subtraction of integer prefix
//! sums is exact, and the float evidence is added in the same order as the
//! unswept fold.  The `psp-suite` property tests (`tests/sweep.rs`) pin this
//! down over random corpora × window grids × shard axes × thread counts.
//!
//! Plans are cached per engine core behind a [`PlanCache`] — a small bounded
//! keyed cache (most-recently-used, [`PLAN_CACHE_CAPACITY`] slots) — keyed by
//! the keyword database, the scene half of the configuration ([`PlanKey`]:
//! region, application, credibility rule — windows and SAI weights are
//! resolved per sweep) and the core's ingest generation.  Several (database,
//! scene) pairs in rotation — a `SweepMatrix` evaluating many scenarios over
//! one warm engine, or two alternating monitoring scenes — each keep their
//! plan instead of thrashing one slot; a
//! [`LiveEngine`](super::LiveEngine) invalidates its plans exactly when an
//! ingest batch lands (generation bump), and a
//! [`ShardedEngine`](super::ShardedEngine) keeps per-shard caches,
//! invalidated only when *that shard* absorbs posts.

use super::{profile_query, EngineCore};
use crate::config::{PspConfig, SaiWeights};
use crate::keyword_db::{KeywordDatabase, KeywordProfile};
use crate::sai::{SaiEntry, SaiPartial};
use rayon::prelude::*;
use socialsim::corpus::Corpus;
use socialsim::post::{Region, TargetApplication};
use socialsim::time::{DateWindow, SimDate};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// The configuration half a sweep plan actually depends on: the scene filters
/// (region, application) and the credibility rule.  Windows are resolved per
/// sweep and SAI weights per entry, so configurations differing only in those
/// share one plan — a weight-ablation sweep re-uses the cached columns.
#[derive(Debug, Clone, PartialEq)]
pub(super) struct PlanKey {
    region: Region,
    application: TargetApplication,
    min_author_credibility: Option<f64>,
}

impl PlanKey {
    pub(super) fn of(config: &PspConfig) -> Self {
        Self {
            region: config.region,
            application: config.application,
            min_author_credibility: config.min_author_credibility,
        }
    }
}

/// One keyword profile's window-invariant evidence, held in **two aligned
/// orders**:
///
/// * the primary columns live in **ascending post-id order** (the natural
///   candidate order — also the mandatory fold order for the order-sensitive
///   float evidence);
/// * a **date-sorted view** (`sorted_dates` + the `perm` permutation) turns
///   any window into a contiguous rank range via two binary searches, with
///   the integer evidence prefix-summed along that view.
///
/// Per window the integer sums are O(log n) prefix subtractions; the
/// order-sensitive evidence re-folds over the window's own rows only, picking
/// the cheapest id-ordering strategy per window (see
/// [`window_rows`](Self::window_rows)).
#[derive(Debug, Clone, Default)]
pub(super) struct ProfileColumns {
    /// Local post ids of the surviving candidates, strictly ascending
    /// (id-order row axis).
    ids: Vec<u32>,
    /// Per-row intent scores, id order.  Order-sensitive: folded per window
    /// in ascending post-id order, never prefix-summed (float addition is
    /// not associative, and bit-exactness is the contract).
    intents: Vec<f64>,
    /// Row → range into `prices` (`len + 1` offsets), id order.
    price_offsets: Vec<u32>,
    /// Mined prices, flattened in id order.
    prices: Vec<f64>,
    /// The candidates' posting dates in ascending (date, id) order — the
    /// binary-search axis of the date-sorted view.
    sorted_dates: Vec<SimDate>,
    /// Date rank → id-order row: the stable date sort as a permutation.
    perm: Vec<u32>,
    /// Id-order row → date rank: the inverse of `perm`, for the linear-walk
    /// fold strategy.
    rank_of: Vec<u32>,
    /// `prefix_views[i]` = summed views of the first `i` date-ranked rows
    /// (`len + 1`).
    prefix_views: Vec<u64>,
    /// Prefix-summed interactions along the date-sorted view, like
    /// `prefix_views`.
    prefix_interactions: Vec<u64>,
    /// Prefix-summed mined-price counts along the date-sorted view — sizes
    /// every window's price buffer exactly, in O(1).
    prefix_price_counts: Vec<u32>,
    /// `perm_descents[i]` = number of adjacent descents among the first `i`
    /// entries of `perm` (`len + 1` prefix counts): a rank range `[lo, hi)`
    /// is already in ascending id order iff it contains no descent — an O(1)
    /// check that lets in-order windows (the overwhelmingly common shape:
    /// per-keyword candidates usually arrive in date order) fold straight
    /// over contiguous column slices.
    perm_descents: Vec<u32>,
}

/// The rows one *in-order* window covers, in ascending post-id order —
/// produced by [`ProfileColumns::in_order_rows`] at O(1) cost.
enum RowSet<'a> {
    /// A contiguous id-order row run `[from, to)`: the fold is pure slice
    /// arithmetic (one pass for the intent sum, one bulk copy for prices).
    Run(usize, usize),
    /// An ascending-but-gapped row list, borrowed straight from `perm`.
    Rows(&'a [u32]),
}

impl ProfileColumns {
    /// Projects one profile's candidates under the window-invariant filters
    /// of the base configuration (content, region, application, credibility
    /// — everything but the window) into the dual-order columns.  Forces the
    /// text signals of every surviving candidate — paid once per plan, not
    /// per window.
    fn build(
        core: &EngineCore,
        corpus: &Corpus,
        profile: &KeywordProfile,
        base_config: &PspConfig,
    ) -> Self {
        let query = profile_query(profile, base_config);
        let candidates = core.index.content_candidates(corpus, &query);
        let mut columns = Self::default();
        columns.ids.reserve(candidates.len());
        columns.intents.reserve(candidates.len());
        columns.price_offsets.reserve(candidates.len() + 1);
        columns.price_offsets.push(0);
        // Id-order columns first: candidates arrive ascending, and the
        // filters preserve order.
        let mut dates: Vec<SimDate> = Vec::with_capacity(candidates.len());
        let mut views: Vec<u64> = Vec::with_capacity(candidates.len());
        let mut interactions: Vec<u64> = Vec::with_capacity(candidates.len());
        for id in candidates {
            if !core.index.matches_scene(id, &query) {
                continue;
            }
            let signal = core.signal(corpus, id);
            if let Some(threshold) = base_config.min_author_credibility {
                // Same rule as the aggregation paths: credible author, or
                // organic engagement above 1% interaction rate.
                if signal.credibility < threshold && signal.interaction_rate <= 0.01 {
                    continue;
                }
            }
            columns.ids.push(id);
            columns.intents.push(signal.intent);
            columns.prices.extend_from_slice(&signal.prices);
            columns.price_offsets.push(columns.prices.len() as u32);
            dates.push(core.index.date_of(id));
            views.push(signal.views);
            interactions.push(signal.interactions);
        }
        let rows = columns.ids.len();

        // The date-sorted view: a stable sort keeps equal dates in ascending
        // id order, making `perm` the (date, id) order the windows slice.
        let mut perm: Vec<u32> = (0..rows as u32).collect();
        perm.sort_by_key(|row| dates[*row as usize]);
        let mut rank_of = vec![0_u32; rows];
        for (rank, row) in perm.iter().enumerate() {
            rank_of[*row as usize] = rank as u32;
        }
        columns.sorted_dates = perm.iter().map(|row| dates[*row as usize]).collect();
        columns.prefix_views.reserve(rows + 1);
        columns.prefix_views.push(0);
        columns.prefix_interactions.reserve(rows + 1);
        columns.prefix_interactions.push(0);
        columns.prefix_price_counts.reserve(rows + 1);
        columns.prefix_price_counts.push(0);
        columns.perm_descents.reserve(rows + 1);
        columns.perm_descents.push(0);
        for (rank, row) in perm.iter().enumerate() {
            let row = *row as usize;
            columns
                .prefix_views
                .push(columns.prefix_views[rank] + views[row]);
            columns
                .prefix_interactions
                .push(columns.prefix_interactions[rank] + interactions[row]);
            columns.prefix_price_counts.push(
                columns.prefix_price_counts[rank] + columns.price_offsets[row + 1]
                    - columns.price_offsets[row],
            );
            columns.perm_descents.push(
                columns.perm_descents[rank] + u32::from(rank > 0 && perm[rank - 1] > perm[rank]),
            );
        }
        columns.perm = perm;
        columns.rank_of = rank_of;
        columns
    }

    /// The contiguous date-rank range covered by the window (`None` = every
    /// row): two binary searches over the sorted date column.
    fn window_bounds(&self, window: Option<&DateWindow>) -> (usize, usize) {
        match window {
            None => (0, self.sorted_dates.len()),
            Some(window) => {
                let lo = self
                    .sorted_dates
                    .partition_point(|date| *date < window.from);
                let hi = self.sorted_dates.partition_point(|date| *date <= window.to);
                // An inverted window (`from > to`, constructible through the
                // pub fields or deserialisation) contains no date — clamp to
                // the empty range so the sweep reports zero evidence exactly
                // like the per-window paths, instead of underflowing.
                (lo, hi.max(lo))
            }
        }
    }

    /// The id-order rows of rank range `[lo, hi)` when the range is already
    /// in ascending id order — the cheap per-window resolutions:
    ///
    /// * **full coverage** — a window spanning every row is the whole
    ///   id-order column `[0, n)` no matter how scrambled the permutation is
    ///   (the Figure-9 "full history" shape);
    /// * **in order** (O(1) check via the descent prefix counts) — the range
    ///   is borrowed from `perm` as-is; when it is also gap-free it collapses
    ///   to a contiguous [`RowSet::Run`] whose fold is pure slice work.
    ///
    /// Returns `None` for a scrambled range — those windows are resolved
    /// together by one shared [`distribute`](Self::distribute) pass instead
    /// of paying an ordering cost each.
    fn in_order_rows(&self, lo: usize, hi: usize) -> Option<RowSet<'_>> {
        if hi - lo == self.perm.len() {
            return Some(RowSet::Run(0, self.perm.len()));
        }
        if hi == lo {
            return Some(RowSet::Run(0, 0));
        }
        if hi <= lo + 1 || self.perm_descents[hi] == self.perm_descents[lo + 1] {
            let first = self.perm[lo] as usize;
            let last = self.perm[hi - 1] as usize;
            if last - first == hi - 1 - lo {
                return Some(RowSet::Run(first, last + 1));
            }
            return Some(RowSet::Rows(&self.perm[lo..hi]));
        }
        None
    }

    /// Resolves every *scrambled* window of a sweep in **one ascending-id
    /// pass**: the windows' rank bounds partition the rank axis into
    /// elementary segments, each segment knows which windows cover it
    /// (interval stabbing), and a single walk over the id-ordered rows calls
    /// `visit(window, row)` for every (window, row) membership — in
    /// ascending id order per window, the fold order bit-exactness demands.
    ///
    /// Cost: O(windows·log windows + rows) once, plus exactly one visit per
    /// membership — instead of one O(rows) walk (or O(k log k) sort) *per
    /// window*.
    fn distribute(
        &self,
        scrambled: &[(usize, (usize, usize))],
        mut visit: impl FnMut(usize, usize),
    ) {
        // The sorted, deduplicated rank bounds: segment `s` spans
        // `[points[s], points[s + 1])`; ranks outside every window land in
        // segments no window covers.
        let mut points: Vec<u32> = scrambled
            .iter()
            .flat_map(|(_, (lo, hi))| [*lo as u32, *hi as u32])
            .collect();
        points.sort_unstable();
        points.dedup();
        let segments = points.len().saturating_sub(1);
        let mut covers: Vec<Vec<u32>> = vec![Vec::new(); segments];
        for (window, (lo, hi)) in scrambled {
            // Both bounds are members of `points`, so partition_point finds
            // their exact segment indices.
            let first = points.partition_point(|p| (*p as usize) < *lo);
            let last = points.partition_point(|p| (*p as usize) < *hi);
            for segment in &mut covers[first..last] {
                segment.push(*window as u32);
            }
        }
        // Dense rank → segment map (u32::MAX = covered by no window), so the
        // hot row loop is two loads and a bounds test.
        let rows = self.perm.len();
        let mut segment_of: Vec<u32> = vec![u32::MAX; rows];
        for (segment, cover) in covers.iter().enumerate() {
            if cover.is_empty() {
                continue;
            }
            for rank in points[segment]..points[segment + 1] {
                segment_of[rank as usize] = segment as u32;
            }
        }
        for row in 0..rows {
            let segment = segment_of[self.rank_of[row] as usize];
            if segment == u32::MAX {
                continue;
            }
            for window in &covers[segment as usize] {
                visit(*window as usize, row);
            }
        }
    }

    /// Resolves a whole sweep into one raw (unnormalised) [`SaiEntry`] per
    /// window: counts and integer sums by prefix-sum subtraction, intent and
    /// prices re-folded over each window's own rows in ascending post-id
    /// order — in-order windows via slice folds, scrambled windows batched
    /// through one [`distribute`](Self::distribute) pass.
    pub(super) fn entries_for(
        &self,
        profile: &KeywordProfile,
        weights: SaiWeights,
        windows: &[Option<DateWindow>],
    ) -> Vec<SaiEntry> {
        let bounds: Vec<(usize, usize)> = windows
            .iter()
            .map(|window| self.window_bounds(window.as_ref()))
            .collect();
        let mut intents: Vec<f64> = vec![0.0; bounds.len()];
        let mut prices: Vec<Vec<f64>> = bounds
            .iter()
            .map(|(lo, hi)| {
                Vec::with_capacity(
                    (self.prefix_price_counts[*hi] - self.prefix_price_counts[*lo]) as usize,
                )
            })
            .collect();
        let mut scrambled: Vec<(usize, (usize, usize))> = Vec::new();
        for (w, &(lo, hi)) in bounds.iter().enumerate() {
            match self.in_order_rows(lo, hi) {
                Some(RowSet::Run(from, to)) => {
                    for value in &self.intents[from..to] {
                        intents[w] += value;
                    }
                    prices[w].extend_from_slice(
                        &self.prices
                            [self.price_offsets[from] as usize..self.price_offsets[to] as usize],
                    );
                }
                Some(RowSet::Rows(rows)) => {
                    for row in rows {
                        let row = *row as usize;
                        intents[w] += self.intents[row];
                        let from = self.price_offsets[row] as usize;
                        let to = self.price_offsets[row + 1] as usize;
                        prices[w].extend_from_slice(&self.prices[from..to]);
                    }
                }
                None => scrambled.push((w, (lo, hi))),
            }
        }
        if !scrambled.is_empty() {
            self.distribute(&scrambled, |w, row| {
                intents[w] += self.intents[row];
                let from = self.price_offsets[row] as usize;
                let to = self.price_offsets[row + 1] as usize;
                prices[w].extend_from_slice(&self.prices[from..to]);
            });
        }
        bounds
            .iter()
            .zip(intents)
            .zip(prices)
            .map(|((&(lo, hi), intent), prices)| {
                let posts = hi - lo;
                let views = self.prefix_views[hi] - self.prefix_views[lo];
                let interactions = self.prefix_interactions[hi] - self.prefix_interactions[lo];
                let sai = weights.view_weight * views as f64
                    + weights.interaction_weight * interactions as f64
                    + weights.post_weight * posts as f64
                    + weights.intent_weight * intent;
                SaiEntry {
                    keyword: profile.keyword.clone(),
                    scenario: profile.scenario.clone(),
                    vector: profile.vector,
                    origin: profile.origin,
                    posts,
                    views,
                    interactions,
                    intent,
                    prices,
                    sai,
                    probability: 0.0,
                }
            })
            .collect()
    }

    /// Resolves a whole sweep into one mergeable [`SaiPartial`] per window,
    /// keyed by global post ids (`global_ids` = the shard's local→global
    /// mapping) — the sharded counterpart of
    /// [`entries_for`](Self::entries_for), feeding the existing
    /// pre-normalisation k-way merge.  A `false` entry in `live` (a window
    /// this shard provably cannot match) yields an empty partial without
    /// touching the columns.
    pub(super) fn partials_for(
        &self,
        global_ids: &[u32],
        windows: &[Option<DateWindow>],
        live: &[bool],
    ) -> Vec<SaiPartial> {
        let bounds: Vec<(usize, usize)> = windows
            .iter()
            .zip(live)
            .map(|(window, live)| {
                if *live {
                    self.window_bounds(window.as_ref())
                } else {
                    (0, 0)
                }
            })
            .collect();
        let mut partials: Vec<SaiPartial> = bounds
            .iter()
            .map(|&(lo, hi)| SaiPartial {
                posts: hi - lo,
                views: self.prefix_views[hi] - self.prefix_views[lo],
                interactions: self.prefix_interactions[hi] - self.prefix_interactions[lo],
                ids: Vec::with_capacity(hi - lo),
                intents: Vec::with_capacity(hi - lo),
                price_counts: Vec::with_capacity(hi - lo),
                prices: Vec::with_capacity(
                    (self.prefix_price_counts[hi] - self.prefix_price_counts[lo]) as usize,
                ),
            })
            .collect();
        // global_ids is strictly ascending, so ascending local id order is
        // ascending global id order — the order the merge requires.
        let mut scrambled: Vec<(usize, (usize, usize))> = Vec::new();
        for (w, &(lo, hi)) in bounds.iter().enumerate() {
            match self.in_order_rows(lo, hi) {
                Some(RowSet::Run(from, to)) => {
                    let partial = &mut partials[w];
                    partial
                        .ids
                        .extend(self.ids[from..to].iter().map(|id| global_ids[*id as usize]));
                    partial.intents.extend_from_slice(&self.intents[from..to]);
                    partial.price_counts.extend(
                        self.price_offsets[from..=to]
                            .windows(2)
                            .map(|pair| pair[1] - pair[0]),
                    );
                    partial.prices.extend_from_slice(
                        &self.prices
                            [self.price_offsets[from] as usize..self.price_offsets[to] as usize],
                    );
                }
                Some(RowSet::Rows(rows)) => {
                    for row in rows {
                        self.push_partial_row(&mut partials[w], global_ids, *row as usize);
                    }
                }
                None => scrambled.push((w, (lo, hi))),
            }
        }
        if !scrambled.is_empty() {
            self.distribute(&scrambled, |w, row| {
                self.push_partial_row(&mut partials[w], global_ids, row);
            });
        }
        partials
    }

    /// Appends one id-order row to a partial being assembled.
    fn push_partial_row(&self, partial: &mut SaiPartial, global_ids: &[u32], row: usize) {
        let from = self.price_offsets[row] as usize;
        let to = self.price_offsets[row + 1] as usize;
        partial.ids.push(global_ids[self.ids[row] as usize]);
        partial.intents.push(self.intents[row]);
        partial.price_counts.push((to - from) as u32);
        partial.prices.extend_from_slice(&self.prices[from..to]);
    }

    /// Number of candidate rows in the plan (test-only introspection).
    #[cfg(test)]
    pub(super) fn len(&self) -> usize {
        self.ids.len()
    }
}

/// A full sweep plan: one [`ProfileColumns`] per keyword profile, plus the
/// key it was built for.
#[derive(Debug, Clone)]
pub(super) struct SweepPlan {
    /// The core's ingest generation at build time; a later generation means
    /// posts arrived and the plan is stale.
    generation: u64,
    /// The keyword database the plan projects (column order = profile order).
    db: KeywordDatabase,
    /// The window-invariant configuration half the plan bakes in.
    key: PlanKey,
    /// One column set per profile, in database order.
    pub(super) profiles: Vec<ProfileColumns>,
}

impl SweepPlan {
    /// Builds the plan for a database and base configuration, fanning the
    /// per-profile column projections out over worker threads.
    fn build(
        core: &EngineCore,
        corpus: &Corpus,
        db: &KeywordDatabase,
        base_config: &PspConfig,
    ) -> Self {
        let jobs: Vec<&KeywordProfile> = db.iter().collect();
        let profiles: Vec<ProfileColumns> = jobs
            .par_iter()
            .map(|profile| ProfileColumns::build(core, corpus, profile, base_config))
            .collect();
        Self {
            generation: core.generation,
            db: db.clone(),
            key: PlanKey::of(base_config),
            profiles,
        }
    }

    /// Whether the plan still describes this core, database and scene.
    fn is_valid_for(&self, generation: u64, db: &KeywordDatabase, key: &PlanKey) -> bool {
        self.generation == generation && self.key == *key && self.db == *db
    }

    /// Total candidate rows across all profiles (test-only introspection).
    #[cfg(test)]
    pub(super) fn candidate_rows(&self) -> usize {
        self.profiles.iter().map(ProfileColumns::len).sum()
    }
}

/// Maximum number of plans one [`PlanCache`] retains.  Every (database,
/// scene) pair in rotation costs one slot; eight covers the matrix workloads
/// (a handful of scenario databases times one or two scene filters each)
/// while keeping the memory bound tight.
pub(super) const PLAN_CACHE_CAPACITY: usize = 8;

/// A small, bounded, interior-mutable cache of the [`SweepPlan`]s most
/// recently built on an engine core, keyed by `(generation, database,
/// scene)`.
///
/// Alternating (database, scene) pairs — a `SweepMatrix` evaluating several
/// scenarios against one warm engine, or two monitoring scenes taking turns —
/// each keep their plan instead of thrashing a single slot.  Plans from
/// superseded ingest generations can never validate again and are dropped
/// eagerly; beyond [`PLAN_CACHE_CAPACITY`] the least recently used plan is
/// evicted.
pub(super) struct PlanCache {
    /// The cached plans, least recently used first.
    slots: Mutex<Vec<Arc<SweepPlan>>>,
    /// Number of plans ever built through this cache — how the plan-reuse
    /// regression tests prove "one build per (generation, database, scene)".
    builds: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self {
            slots: Mutex::new(Vec::new()),
            builds: AtomicU64::new(0),
        }
    }
}

impl PlanCache {
    fn lock(&self) -> MutexGuard<'_, Vec<Arc<SweepPlan>>> {
        // A poisoning panic can only have happened outside plan construction
        // (plans are built before being stored), so the cached values are
        // safe.
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The cached plan for this (generation, database, scene), else a freshly
    /// built (and newly cached) one.  Racing builders of one key may both
    /// build — both plans are correct and the cache keeps exactly one of
    /// them, so a race only costs duplicated work.
    pub(super) fn plan_for(
        &self,
        core: &EngineCore,
        corpus: &Corpus,
        db: &KeywordDatabase,
        base_config: &PspConfig,
    ) -> Arc<SweepPlan> {
        let key = PlanKey::of(base_config);
        {
            let mut slots = self.lock();
            // Plans of superseded generations can never validate again.
            slots.retain(|plan| plan.generation == core.generation);
            if let Some(hit) = slots
                .iter()
                .position(|plan| plan.is_valid_for(core.generation, db, &key))
            {
                let plan = slots.remove(hit);
                slots.push(Arc::clone(&plan)); // most recently used last
                return plan;
            }
        }
        // Build outside the lock so concurrent sweeps of *different* keys are
        // not serialised behind each other's builds.
        let plan = Arc::new(SweepPlan::build(core, corpus, db, base_config));
        self.builds.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.lock();
        // A racing builder may have cached the same key meanwhile: drop it so
        // the cache holds one plan per key.
        slots.retain(|cached| !cached.is_valid_for(core.generation, db, &key));
        slots.push(Arc::clone(&plan));
        if slots.len() > PLAN_CACHE_CAPACITY {
            let excess = slots.len() - PLAN_CACHE_CAPACITY;
            slots.drain(..excess);
        }
        plan
    }

    /// Number of plans built through this cache (test-only introspection).
    #[cfg(test)]
    pub(super) fn build_count(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Whether any plan is currently cached (test-only introspection).
    #[cfg(test)]
    pub(super) fn is_populated(&self) -> bool {
        !self.lock().is_empty()
    }
}

impl Clone for PlanCache {
    fn clone(&self) -> Self {
        // Clones share the immutable plans (cheap `Arc` clones) but get their
        // own slots, so a clone that later ingests re-plans independently.
        Self {
            slots: Mutex::new(self.lock().clone()),
            builds: AtomicU64::new(self.builds.load(Ordering::Relaxed)),
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cached = self.lock().len();
        f.debug_struct("PlanCache")
            .field("cached", &cached)
            .finish()
    }
}
