//! The sharded scoring engine: one engine core per corpus shard, parallel
//! partial scoring, and a lossless merge.
//!
//! A single [`LiveEngine`](super::LiveEngine) serves one corpus from one
//! inverted index.  At fleet scale — 100k+ posts, many markets, sweeping
//! analysis windows — one index is both a memory ceiling and a parallelism
//! bottleneck: every query walks one big vocabulary and every window filter
//! re-scans one big candidate set.  [`ShardedEngine`] splits the corpus by a
//! [`ShardSpec`] (time buckets or regions), builds an independent
//! [`EngineCore`](super::EngineCore) per shard, and answers every entry point
//! by fanning partial scoring out over the shards and merging:
//!
//! * **partials, not lists** — each shard scores its own posts into
//!   [`SaiPartial`]s (counts, integer sums, and per-post order-sensitive
//!   evidence keyed by global post id);
//! * **merge before normalisation** — [`SaiList::from_shard_partials`] adds
//!   the exact integer sums, re-folds the float evidence in ascending global
//!   post id order, and only then normalises probabilities and sorts.  The
//!   result is **bit-identical** to the unsharded engine and to the naive
//!   oracle (`SaiList::compute_naive`), regardless of shard count, shard axis
//!   or worker-thread count — pinned down by the `psp-suite` property tests;
//! * **pruning** — a shard whose [`ShardKey`] provably cannot match a query's
//!   window or region filter contributes an empty partial without touching its
//!   index.  This is the sharded win on windowed workloads: a yearly-window
//!   monitoring sweep over yearly time shards only ever filters each shard's
//!   own candidates instead of filtering the full corpus' candidates once per
//!   window (see the `engine_sharding` bench);
//! * **shard-aware ingest** — [`ShardedEngine::ingest`] routes each new post
//!   to its shard (new time buckets or regions create shards on the fly) and
//!   extends that shard's index in place, so shard-then-ingest and
//!   ingest-then-shard converge to the same state.

use super::{
    profile_query, BatchCandidates, EngineCore, IngestReceipt, SaiScorer, SignalCacheError,
    SignalCacheFile, StreamingScorer, WindowAxis,
};
use crate::config::PspConfig;
use crate::keyword_db::{KeywordDatabase, KeywordProfile};
use crate::sai::{SaiList, SaiPartial};
use rayon::prelude::*;
use socialsim::corpus::Corpus;
use socialsim::index::{ShardKey, ShardSpec};
use socialsim::post::Post;
use socialsim::time::DateWindow;
use textmine::pipeline::TextPipeline;

/// One shard: a sub-corpus, its own engine core, and the mapping from
/// shard-local post ids back to global corpus ids.
#[derive(Debug, Clone)]
struct Shard {
    key: ShardKey,
    corpus: Corpus,
    core: EngineCore,
    /// Local id → global id.  Strictly ascending, because partitioning and
    /// ingest routing both preserve corpus insertion order.
    global_ids: Vec<u32>,
}

impl Shard {
    fn empty(key: ShardKey, pipeline: TextPipeline) -> Self {
        let corpus = Corpus::new();
        let core = EngineCore::with_pipeline(&corpus, pipeline);
        Self {
            key,
            corpus,
            core,
            global_ids: Vec::new(),
        }
    }
}

/// An indexed SAI scoring engine over a corpus partitioned into shards.
///
/// Construction partitions the posts by the [`ShardSpec`] and builds one
/// inverted index per shard, fanning out over worker threads.  Every scoring
/// entry point scores the shards in parallel and merges the partial evidence
/// into a list bit-identical to what a single engine over the whole corpus
/// would produce (see `SaiList::from_shard_partials`).
///
/// ```
/// use psp::config::PspConfig;
/// use psp::engine::{ScoringEngine, ShardedEngine};
/// use psp::keyword_db::KeywordDatabase;
/// use socialsim::index::ShardSpec;
/// use socialsim::scenario;
///
/// let corpus = scenario::excavator_europe(7);
/// let (db, config) = (KeywordDatabase::excavator_seed(), PspConfig::excavator_europe());
/// let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::yearly());
/// assert!(sharded.shard_count() > 1);
/// // Bit-identical to the unsharded pass.
/// assert_eq!(
///     sharded.sai_list(&db, &config),
///     ScoringEngine::new(&corpus).sai_list(&db, &config)
/// );
/// ```
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    spec: ShardSpec,
    shards: Vec<Shard>,
    total_posts: usize,
    generation: u64,
    /// The pipeline cloned into every shard core (and every shard created on
    /// demand by ingest) — kept here so cache validation sees one lexicon.
    pipeline: TextPipeline,
}

impl ShardedEngine {
    /// Partitions the corpus by the spec and indexes every shard, fanning the
    /// per-shard index builds out over worker threads.  An empty corpus yields
    /// an engine with zero shards; [`ingest`](Self::ingest) creates shards on
    /// demand.
    #[must_use]
    pub fn new(corpus: Corpus, spec: ShardSpec) -> Self {
        Self::with_pipeline(corpus, spec, TextPipeline::new())
    }

    /// Builds a sharded engine with a custom text pipeline (cloned into every
    /// shard) — see [`super::ScoringEngine::with_pipeline`].
    #[must_use]
    pub fn with_pipeline(corpus: Corpus, spec: ShardSpec, pipeline: TextPipeline) -> Self {
        let total_posts = corpus.len();
        let groups = spec.partition(&corpus);
        // Move (never clone) each post into its shard's corpus.
        let mut posts: Vec<Option<Post>> = corpus.into_posts().into_iter().map(Some).collect();
        let assembled: Vec<(ShardKey, Corpus, Vec<u32>)> = groups
            .into_iter()
            .map(|(key, ids)| {
                let shard_posts: Vec<Post> = ids
                    .iter()
                    .map(|id| {
                        posts[*id as usize]
                            .take()
                            .expect("partition routes each post to exactly one shard")
                    })
                    .collect();
                (key, Corpus::from_posts(shard_posts), ids)
            })
            .collect();
        // Each shard's inverted index is independent — build them in parallel.
        let cores: Vec<EngineCore> = assembled
            .par_iter()
            .map(|(_, shard_corpus, _)| EngineCore::with_pipeline(shard_corpus, pipeline.clone()))
            .collect();
        let shards = assembled
            .into_iter()
            .zip(cores)
            .map(|((key, corpus, global_ids), core)| Shard {
                key,
                corpus,
                core,
                global_ids,
            })
            .collect();
        Self {
            spec,
            shards,
            total_posts,
            generation: 0,
            pipeline,
        }
    }

    /// Ingests a batch of posts through shard-aware append: each post routes
    /// to the shard its [`ShardSpec`] key selects — its own time bucket
    /// (fresh posts extend the newest shard, backdated ones their historical
    /// shard) or its region's shard, and a key with no shard yet creates one
    /// on the fly — then every touched shard's index is
    /// extended in place ([`socialsim::index::CorpusIndex::append`], amortised
    /// O(batch)).  Returns an [`IngestReceipt`] stamping the number of
    /// appended posts with the generation that publishes them.
    ///
    /// Routing is deterministic from the post alone, so ingesting into a
    /// sharded engine and re-sharding the grown corpus from scratch produce
    /// the same shard layout and bit-identical scores (property-tested).
    pub fn ingest(&mut self, batch: impl IntoIterator<Item = Post>) -> IngestReceipt {
        let mut pending = vec![0_usize; self.shards.len()];
        let mut appended = 0_usize;
        for post in batch {
            let key = self.spec.key_for(&post);
            let shard = match self.shards.iter().position(|s| s.key == key) {
                Some(index) => index,
                None => {
                    self.shards.push(Shard::empty(key, self.pipeline.clone()));
                    pending.push(0);
                    self.shards.len() - 1
                }
            };
            let global_id = (self.total_posts + appended) as u32;
            self.shards[shard].corpus.push(post);
            self.shards[shard].global_ids.push(global_id);
            pending[shard] += 1;
            appended += 1;
        }
        for (shard, new_posts) in self.shards.iter_mut().zip(&pending) {
            if *new_posts > 0 {
                shard.core.append(&shard.corpus, *new_posts);
            }
        }
        self.total_posts += appended;
        if appended > 0 {
            self.generation += 1;
        }
        IngestReceipt {
            appended,
            generation: self.generation,
        }
    }

    /// The spec the corpus is partitioned by.
    #[must_use]
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Number of (non-empty) shards currently held.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of posts served across all shards.
    #[must_use]
    pub fn post_count(&self) -> usize {
        self.total_posts
    }

    /// Number of non-empty ingest batches absorbed since construction.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The shard layout: every shard's key and post count, sorted by key.
    #[must_use]
    pub fn shard_sizes(&self) -> Vec<(ShardKey, usize)> {
        let mut sizes: Vec<(ShardKey, usize)> = self
            .shards
            .iter()
            .map(|shard| (shard.key, shard.corpus.len()))
            .collect();
        sizes.sort_by_key(|(key, _)| *key);
        sizes
    }

    /// Total sweep plans built across all shard cores since construction
    /// (test-only introspection for the shard-pruning plan-count tests).
    #[cfg(test)]
    pub(super) fn plan_build_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.core.plans.build_count())
            .sum()
    }

    /// Reassembles the full corpus in global post order (cloning the posts) —
    /// a convenience for cold-rebuild comparisons and snapshotting.
    #[must_use]
    pub fn snapshot_corpus(&self) -> Corpus {
        let mut posts: Vec<(u32, Post)> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .global_ids
                    .iter()
                    .zip(shard.corpus.posts())
                    .map(|(id, post)| (*id, post.clone()))
            })
            .collect();
        posts.sort_by_key(|(id, _)| *id);
        Corpus::from_posts(posts.into_iter().map(|(_, post)| post))
    }

    /// Eagerly materialises every shard's per-post signals.  Shards are
    /// visited in sequence — each shard's own signal pass already fans out
    /// over worker threads, so walking shards sequentially avoids nested
    /// thread fan-out.
    pub fn precompute_signals(&self) {
        for shard in &self.shards {
            shard.core.precompute_signals(&shard.corpus);
        }
    }

    /// Exports the memoised per-post text signals of **all shards** as one
    /// [`SignalCacheFile`] in global corpus order — interchangeable with a
    /// cache exported by the unsharded engines over the same corpus (the
    /// signals are bit-identical), so one file warms any engine shape.
    #[must_use]
    pub fn export_signal_cache(&self) -> SignalCacheFile {
        self.precompute_signals();
        let mut rows: Vec<Option<(u64, f64, &[f64])>> = vec![None; self.total_posts];
        for shard in &self.shards {
            for local in 0..shard.corpus.len() as u32 {
                let row = shard.core.cached_row(&shard.corpus, local);
                rows[shard.global_ids[local as usize] as usize] = Some(row);
            }
        }
        let mut file = SignalCacheFile::empty(*self.pipeline.lexicon(), self.total_posts);
        for row in rows {
            let (post_id, intent, prices) =
                row.expect("shard global ids cover every corpus position");
            file.push_row(post_id, intent, prices);
        }
        file
    }

    /// Installs a previously exported signal cache, routing every global row
    /// to the shard holding that post.  Validation covers version, lexicon,
    /// total length and every post id (against the shard corpora) before a
    /// single signal is installed.  Returns the number of posts warmed.
    ///
    /// # Errors
    ///
    /// Returns a [`SignalCacheError`] when the cache does not exactly
    /// describe this engine's corpus.
    pub fn load_signal_cache(&self, cache: &SignalCacheFile) -> Result<usize, SignalCacheError> {
        cache.check_shape(self.total_posts, self.pipeline.lexicon())?;
        for shard in &self.shards {
            for (local, post) in shard.corpus.posts().iter().enumerate() {
                let index = shard.global_ids[local] as usize;
                if cache.post_ids[index] != post.id() {
                    return Err(SignalCacheError::PostIdMismatch {
                        index,
                        cached: cache.post_ids[index],
                        found: post.id(),
                    });
                }
            }
        }
        let offsets = cache.price_offsets();
        let mut installed = 0_usize;
        for shard in &self.shards {
            for local in 0..shard.corpus.len() {
                let index = shard.global_ids[local] as usize;
                let prices = &cache.prices[offsets[index]..offsets[index + 1]];
                if shard.core.install_cached(
                    &shard.corpus,
                    local as u32,
                    cache.intents[index],
                    prices,
                ) {
                    installed += 1;
                }
            }
        }
        Ok(installed)
    }

    /// One shard's partials for every profile under one configuration; a
    /// pruned shard (its key provably cannot match the config's region/window
    /// filters) contributes empty partials without touching its index.
    fn shard_partials(
        shard: &Shard,
        profiles: &[&KeywordProfile],
        config: &PspConfig,
    ) -> Vec<SaiPartial> {
        if !shard
            .key
            .may_match(Some(config.region), config.window.as_ref())
        {
            return vec![SaiPartial::default(); profiles.len()];
        }
        profiles
            .iter()
            .map(|profile| {
                shard
                    .core
                    .score_profile_partial(&shard.corpus, profile, config, &shard.global_ids)
            })
            .collect()
    }

    /// Computes the full SAI list in one sharded pass: every shard scores its
    /// partials in parallel, then the merge re-assembles the exact
    /// single-engine result (see `SaiList::from_shard_partials`).
    #[must_use]
    pub fn sai_list(&self, db: &KeywordDatabase, config: &PspConfig) -> SaiList {
        let profiles: Vec<&KeywordProfile> = db.iter().collect();
        let per_shard: Vec<Vec<SaiPartial>> = self
            .shards
            .par_iter()
            .map(|shard| Self::shard_partials(shard, &profiles, config))
            .collect();
        SaiList::from_shard_partials(db, config, &per_shard)
    }

    /// Computes one SAI list per configuration — the sharded batch entry
    /// point for window sweeps.
    ///
    /// Per shard, a profile's content candidates are resolved once and only
    /// the cheap metadata filter re-runs per configuration; configurations
    /// whose window/region filters cannot match the shard's key skip the
    /// shard entirely.  On a windowed sweep over time shards this is the hot
    /// path the sharding exists for: each window only filters the candidates
    /// of the shards it overlaps, instead of the whole corpus' candidates
    /// once per window.
    #[must_use]
    pub fn sai_lists(&self, db: &KeywordDatabase, configs: &[PspConfig]) -> Vec<SaiList> {
        if configs.is_empty() {
            return Vec::new();
        }
        let profiles: Vec<&KeywordProfile> = db.iter().collect();
        // Profile-major per shard: rows[profile][config].
        let mut per_shard: Vec<Vec<Vec<SaiPartial>>> = self
            .shards
            .par_iter()
            .map(|shard| {
                let live: Vec<bool> = configs
                    .iter()
                    .map(|config| {
                        shard
                            .key
                            .may_match(Some(config.region), config.window.as_ref())
                    })
                    .collect();
                if !live.contains(&true) {
                    return vec![vec![SaiPartial::default(); configs.len()]; profiles.len()];
                }
                profiles
                    .iter()
                    .map(|profile| {
                        // Same skeleton as the single-engine batch path:
                        // content candidates once, scene filter hoisted, only
                        // the window predicate re-checked per config (the
                        // shared `BatchCandidates` hoist).
                        let batch = BatchCandidates::hoist(
                            &shard.core,
                            &shard.corpus,
                            profile,
                            &configs[0],
                        );
                        configs
                            .iter()
                            .zip(&live)
                            .map(|(config, shard_live)| {
                                if !shard_live {
                                    return SaiPartial::default();
                                }
                                let query = profile_query(profile, config);
                                shard.core.aggregate_partial(
                                    &shard.corpus,
                                    config,
                                    batch.for_config(config, &query),
                                    &shard.global_ids,
                                )
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        // Transpose into one [shard][profile] grid per config and merge.
        configs
            .iter()
            .enumerate()
            .map(|(c, config)| {
                let per_shard_config: Vec<Vec<SaiPartial>> = per_shard
                    .iter_mut()
                    .map(|rows| {
                        rows.iter_mut()
                            .map(|row| std::mem::take(&mut row[c]))
                            .collect()
                    })
                    .collect();
                SaiList::from_shard_partials(db, config, &per_shard_config)
            })
            .collect()
    }

    /// Computes one SAI list per [`WindowAxis`] entry through **per-shard
    /// sweep plans** — see [`SaiScorer::sai_windows`].
    ///
    /// Each shard core holds its own prefix-summed plan (built on first use,
    /// invalidated only when *that shard* absorbs an ingest batch) and
    /// resolves every window against it; a shard whose [`ShardKey`] provably
    /// cannot match a window contributes an empty partial without touching
    /// its plan, and a shard no window can match never builds a plan at all.
    /// The per-window partials then flow through the existing
    /// pre-normalisation merge (`SaiList::from_shard_partials`), so the
    /// swept lists are bit-identical to the single-engine sweep and to
    /// per-window [`sai_lists`](Self::sai_lists).
    #[must_use]
    pub fn sai_windows(
        &self,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        axis: &WindowAxis,
    ) -> Vec<SaiList> {
        let windows = axis.as_options();
        if windows.is_empty() {
            return Vec::new();
        }
        let profiles: Vec<&KeywordProfile> = db.iter().collect();
        // Profile-major per shard: rows[profile][window].
        let mut per_shard: Vec<Vec<Vec<SaiPartial>>> = self
            .shards
            .par_iter()
            .map(|shard| {
                let live: Vec<bool> = windows
                    .iter()
                    .map(|window| {
                        shard
                            .key
                            .may_match(Some(base_config.region), window.as_ref())
                    })
                    .collect();
                if !live.contains(&true) {
                    return vec![vec![SaiPartial::default(); windows.len()]; profiles.len()];
                }
                let plan = shard.core.sweep_plan(&shard.corpus, db, base_config);
                plan.profiles
                    .iter()
                    .map(|columns| columns.partials_for(&shard.global_ids, windows, &live))
                    .collect()
            })
            .collect();
        // Transpose into one [shard][profile] grid per window and merge —
        // the same pre-normalisation merge as the batch path.
        (0..windows.len())
            .map(|w| {
                let per_shard_window: Vec<Vec<SaiPartial>> = per_shard
                    .iter_mut()
                    .map(|rows| {
                        rows.iter_mut()
                            .map(|row| std::mem::take(&mut row[w]))
                            .collect()
                    })
                    .collect();
                SaiList::from_shard_partials(db, base_config, &per_shard_window)
            })
            .collect()
    }

    /// Deprecated spelling of [`sai_windows`](Self::sai_windows) over
    /// concrete windows.
    #[deprecated(since = "0.2.0", note = "use sai_windows with WindowAxis::each")]
    #[must_use]
    pub fn sai_sweep(
        &self,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        windows: &[DateWindow],
    ) -> Vec<SaiList> {
        self.sai_windows(db, base_config, &WindowAxis::each(windows))
    }

    /// Deprecated spelling of [`sai_windows`](Self::sai_windows) over
    /// optional (`None` = full-history) windows.
    #[deprecated(since = "0.2.0", note = "use sai_windows with WindowAxis::spans")]
    #[must_use]
    pub fn sai_sweep_opt(
        &self,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        windows: &[Option<DateWindow>],
    ) -> Vec<SaiList> {
        self.sai_windows(db, base_config, &WindowAxis::spans(windows))
    }
}

impl SaiScorer for ShardedEngine {
    fn sai_list(&self, db: &KeywordDatabase, config: &PspConfig) -> SaiList {
        ShardedEngine::sai_list(self, db, config)
    }

    fn sai_lists(&self, db: &KeywordDatabase, configs: &[PspConfig]) -> Vec<SaiList> {
        ShardedEngine::sai_lists(self, db, configs)
    }

    fn sai_windows(
        &self,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        axis: &WindowAxis,
    ) -> Vec<SaiList> {
        ShardedEngine::sai_windows(self, db, base_config, axis)
    }
}

impl StreamingScorer for ShardedEngine {
    fn ingest_batch(&mut self, batch: Vec<Post>) -> IngestReceipt {
        self.ingest(batch)
    }

    fn post_count(&self) -> usize {
        ShardedEngine::post_count(self)
    }

    fn generation(&self) -> u64 {
        ShardedEngine::generation(self)
    }

    fn export_signal_cache(&self) -> SignalCacheFile {
        ShardedEngine::export_signal_cache(self)
    }

    fn snapshot_corpus(&self) -> Corpus {
        ShardedEngine::snapshot_corpus(self)
    }

    fn restore_generation(&mut self, generation: u64) {
        self.generation = generation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ScoringEngine;
    use crate::sai::SaiList as Oracle;
    use socialsim::scenario;
    use socialsim::time::DateWindow;

    fn db_and_config() -> (KeywordDatabase, PspConfig) {
        (
            KeywordDatabase::excavator_seed(),
            PspConfig::excavator_europe(),
        )
    }

    #[test]
    fn sharded_list_is_bit_identical_to_single_engine_and_oracle() {
        let corpus = scenario::excavator_europe(42);
        let (db, config) = db_and_config();
        for spec in [
            ShardSpec::yearly(),
            ShardSpec::ByTimeYears(3),
            ShardSpec::ByRegion,
        ] {
            let sharded = ShardedEngine::new(corpus.clone(), spec);
            let single = ScoringEngine::new(&corpus).sai_list(&db, &config);
            assert_eq!(sharded.sai_list(&db, &config), single, "spec {spec:?}");
            assert_eq!(
                sharded.sai_list(&db, &config),
                Oracle::compute_naive(&corpus, &db, &config),
                "spec {spec:?} vs oracle"
            );
        }
    }

    #[test]
    fn sharded_windowed_batch_matches_single_engine() {
        let corpus = scenario::passenger_car_europe(42);
        let db = KeywordDatabase::passenger_car_seed();
        let configs: Vec<PspConfig> = (2015..2024)
            .map(|y| PspConfig::passenger_car_europe().with_window(DateWindow::years(y, y)))
            .collect();
        let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::yearly());
        let single = ScoringEngine::new(&corpus);
        assert_eq!(
            sharded.sai_lists(&db, &configs),
            single.sai_lists(&db, &configs)
        );
    }

    #[test]
    fn sharded_engine_with_poisoning_filter_matches_oracle() {
        let corpus = scenario::excavator_europe(7);
        let db = KeywordDatabase::excavator_seed();
        let config = PspConfig::excavator_europe()
            .with_window(DateWindow::years(2020, 2022))
            .with_poisoning_filter(0.25);
        let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::ByTimeYears(2));
        assert_eq!(
            sharded.sai_list(&db, &config),
            Oracle::compute_naive(&corpus, &db, &config)
        );
    }

    #[test]
    fn ingest_routes_to_existing_and_new_shards() {
        let seed = scenario::excavator_europe(7);
        let (db, config) = db_and_config();
        let mut sharded = ShardedEngine::new(seed.clone(), ShardSpec::yearly());
        let shards_before = sharded.shard_count();

        let extra = scenario::excavator_europe(8).posts().to_vec();
        let receipt = sharded.ingest(extra.clone());
        assert_eq!(receipt.appended, extra.len());
        assert_eq!(receipt.generation, 1);
        assert_eq!(sharded.generation(), 1);
        assert!(sharded.shard_count() >= shards_before);

        let mut grown = seed;
        grown.extend(extra);
        assert_eq!(sharded.post_count(), grown.len());
        assert_eq!(
            sharded.sai_list(&db, &config),
            ScoringEngine::new(&grown).sai_list(&db, &config)
        );
        assert_eq!(sharded.snapshot_corpus(), grown);
    }

    #[test]
    fn empty_engine_grows_shards_on_demand() {
        let (db, config) = db_and_config();
        let mut sharded = ShardedEngine::new(Corpus::new(), ShardSpec::ByRegion);
        assert_eq!(sharded.shard_count(), 0);
        let list = sharded.sai_list(&db, &config);
        assert!(list.entries().iter().all(|e| e.sai == 0.0));

        let posts = scenario::excavator_europe(9).posts().to_vec();
        sharded.ingest(posts.clone());
        let full = Corpus::from_posts(posts);
        assert!(sharded.shard_count() > 0);
        assert_eq!(
            sharded.sai_list(&db, &config),
            ScoringEngine::new(&full).sai_list(&db, &config)
        );
    }

    #[test]
    fn empty_ingest_bumps_nothing() {
        let mut sharded = ShardedEngine::new(scenario::excavator_europe(7), ShardSpec::yearly());
        let sizes = sharded.shard_sizes();
        assert_eq!(sharded.ingest(Vec::new()).appended, 0);
        assert_eq!(sharded.generation(), 0);
        assert_eq!(sharded.shard_sizes(), sizes);
    }

    #[test]
    fn precompute_then_score_matches_lazy_scoring() {
        let corpus = scenario::excavator_europe(7);
        let (db, config) = db_and_config();
        let warm = ShardedEngine::new(corpus.clone(), ShardSpec::yearly());
        warm.precompute_signals();
        let lazy = ShardedEngine::new(corpus, ShardSpec::yearly());
        assert_eq!(warm.sai_list(&db, &config), lazy.sai_list(&db, &config));
    }

    #[test]
    fn matrix_on_a_sharded_engine_plans_only_the_overlapping_shards() {
        let corpus = scenario::excavator_europe(7);
        let (db, base) = db_and_config();
        let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::yearly());
        assert!(sharded.shard_count() > 2);
        let window = DateWindow::years(2021, 2022);
        let spec = crate::engine::MatrixSpec::new()
            .scenario("excavator", db.clone())
            .config("base", base.clone())
            .window(window);
        let results = sharded.sai_matrix(&spec);
        // Only shards whose key may overlap the window ever build a plan —
        // shard-pruned cells never plan.
        let expected = sharded
            .shard_sizes()
            .iter()
            .filter(|(key, _)| key.may_match(Some(base.region), Some(&window)))
            .count() as u64;
        assert!(expected < sharded.shard_count() as u64);
        assert_eq!(sharded.plan_build_count(), expected);
        // And the pruned matrix stays bit-identical to the single engine.
        assert_eq!(results, ScoringEngine::new(&corpus).sai_matrix(&spec));
    }

    #[test]
    fn shard_sizes_cover_every_post_sorted_by_key() {
        let corpus = scenario::excavator_europe(7);
        let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::yearly());
        let sizes = sharded.shard_sizes();
        assert_eq!(sizes.iter().map(|(_, n)| n).sum::<usize>(), corpus.len());
        assert!(sizes.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
