//! Persistable per-post text signals — the serialised form of the engines'
//! memoised signal cache.
//!
//! A warm engine has paid the text-mining pipeline once per post (intent
//! score, mined prices).  [`SignalCacheFile`] makes that investment survive a
//! process restart: export it from any engine shape
//! ([`ScoringEngine::export_signal_cache`](super::ScoringEngine::export_signal_cache),
//! [`LiveEngine`](super::LiveEngine), [`ShardedEngine`](super::ShardedEngine)),
//! save it as JSON next to the serialised corpus
//! ([`socialsim::corpus::Corpus::save_json`]), and load it into a freshly
//! built engine on the next cold start — the pipeline then never runs,
//! because every post's signals arrive pre-computed (bit-identical: the JSON
//! float encoding round-trips exactly).
//!
//! The file is **versioned and validated** before a single signal is
//! installed: the layout version, the intent lexicon the signals were scored
//! with, the corpus length, and every post id (in global corpus order) must
//! match, so a cache from a different, grown, or re-generated corpus is
//! rejected as a whole rather than silently corrupting scores.
//!
//! The layout is columnar (ids / intents / per-post price counts / flattened
//! prices) — compact to serialise and cheap to walk when installing.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;
use textmine::sentiment::IntentLexicon;

/// The on-disk layout version; bumped whenever the signal semantics or the
/// file shape change so stale caches are rejected instead of misread.
pub const SIGNAL_CACHE_VERSION: u32 = 1;

/// The serialised signal cache: one row per post, in global corpus order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalCacheFile {
    /// Layout version ([`SIGNAL_CACHE_VERSION`]).
    pub version: u32,
    /// The intent lexicon the signals were scored with — a cache scored under
    /// different weights must not warm an engine.
    pub lexicon: IntentLexicon,
    /// Post ids in corpus order; validated id-by-id on load.
    pub post_ids: Vec<u64>,
    /// Text-mined intent score per post, aligned with `post_ids`.
    pub intents: Vec<f64>,
    /// Number of mined prices per post, aligned with `post_ids`.
    pub price_counts: Vec<u32>,
    /// Mined prices, flattened in post order.
    pub prices: Vec<f64>,
}

/// Why a cache was rejected (or could not be read/written).
#[derive(Debug, Clone, PartialEq)]
pub enum SignalCacheError {
    /// The layout version does not match [`SIGNAL_CACHE_VERSION`].
    Version {
        /// The version found in the file.
        found: u32,
    },
    /// The cache was scored with a different intent lexicon.
    LexiconMismatch,
    /// The cache covers a different number of posts than the corpus.
    LengthMismatch {
        /// Posts covered by the cache.
        cached: usize,
        /// Posts in the corpus being warmed.
        corpus: usize,
    },
    /// A post id in the cache does not match the corpus at the same position.
    PostIdMismatch {
        /// Global post index at which the mismatch was found.
        index: usize,
        /// The id recorded in the cache.
        cached: u64,
        /// The id found in the corpus.
        found: u64,
    },
    /// The columns disagree with each other (truncated or tampered file).
    Corrupt(String),
    /// A filesystem or serialisation failure.
    Io(String),
}

impl fmt::Display for SignalCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Version { found } => write!(
                f,
                "signal cache layout version {found} != supported {SIGNAL_CACHE_VERSION}"
            ),
            Self::LexiconMismatch => {
                write!(f, "signal cache was scored with a different intent lexicon")
            }
            Self::LengthMismatch { cached, corpus } => write!(
                f,
                "signal cache covers {cached} posts but the corpus has {corpus}"
            ),
            Self::PostIdMismatch {
                index,
                cached,
                found,
            } => write!(
                f,
                "signal cache post id {cached} != corpus post id {found} at index {index}"
            ),
            Self::Corrupt(why) => write!(f, "signal cache is corrupt: {why}"),
            Self::Io(why) => write!(f, "signal cache i/o failed: {why}"),
        }
    }
}

impl std::error::Error for SignalCacheError {}

impl SignalCacheFile {
    /// An empty cache shell at the current version, ready to be filled in
    /// global post order.
    pub(crate) fn empty(lexicon: IntentLexicon, posts: usize) -> Self {
        Self {
            version: SIGNAL_CACHE_VERSION,
            lexicon,
            post_ids: Vec::with_capacity(posts),
            intents: Vec::with_capacity(posts),
            price_counts: Vec::with_capacity(posts),
            prices: Vec::new(),
        }
    }

    /// Appends one post's row.  Rows must arrive in global corpus order.
    pub(crate) fn push_row(&mut self, post_id: u64, intent: f64, prices: &[f64]) {
        self.post_ids.push(post_id);
        self.intents.push(intent);
        self.price_counts.push(prices.len() as u32);
        self.prices.extend_from_slice(prices);
    }

    /// Number of posts the cache covers.
    #[must_use]
    pub fn post_count(&self) -> usize {
        self.post_ids.len()
    }

    /// Validates version, lexicon and column shapes against a corpus of
    /// `corpus_len` posts scored with `lexicon`; post ids are checked
    /// separately by the engines (they know their shard layout).
    pub(crate) fn check_shape(
        &self,
        corpus_len: usize,
        lexicon: &IntentLexicon,
    ) -> Result<(), SignalCacheError> {
        if self.version != SIGNAL_CACHE_VERSION {
            return Err(SignalCacheError::Version {
                found: self.version,
            });
        }
        if self.lexicon != *lexicon {
            return Err(SignalCacheError::LexiconMismatch);
        }
        if self.post_ids.len() != corpus_len {
            return Err(SignalCacheError::LengthMismatch {
                cached: self.post_ids.len(),
                corpus: corpus_len,
            });
        }
        if self.intents.len() != self.post_ids.len()
            || self.price_counts.len() != self.post_ids.len()
        {
            return Err(SignalCacheError::Corrupt(format!(
                "column lengths disagree: {} ids, {} intents, {} price counts",
                self.post_ids.len(),
                self.intents.len(),
                self.price_counts.len()
            )));
        }
        let expected_prices: usize = self.price_counts.iter().map(|c| *c as usize).sum();
        if self.prices.len() != expected_prices {
            return Err(SignalCacheError::Corrupt(format!(
                "price column has {} values but the counts sum to {expected_prices}",
                self.prices.len()
            )));
        }
        Ok(())
    }

    /// Prefix sums of `price_counts`: `offsets[i]..offsets[i + 1]` slices the
    /// flattened price column for post index `i`.  Call after
    /// [`check_shape`](Self::check_shape) (the sums are trusted to line up).
    pub(crate) fn price_offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.price_counts.len() + 1);
        let mut total = 0_usize;
        offsets.push(0);
        for count in &self.price_counts {
            total += *count as usize;
            offsets.push(total);
        }
        offsets
    }

    /// Serialises the cache as JSON to `path`, creating parent directories as
    /// needed.  The write is atomic ([`socialsim::persist::atomic_write`]):
    /// a crash mid-save leaves the previous file at `path` intact.
    ///
    /// # Errors
    ///
    /// Returns [`SignalCacheError::Io`] when serialisation or a filesystem
    /// step fails.
    pub fn save(&self, path: &Path) -> Result<(), SignalCacheError> {
        let json = serde_json::to_string(self)
            .map_err(|err| SignalCacheError::Io(format!("serialise signal cache: {err:?}")))?;
        socialsim::persist::atomic_write(path, json.as_bytes()).map_err(SignalCacheError::Io)
    }

    /// Loads a cache from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`SignalCacheError::Io`] when the file is unreadable or
    /// malformed.  Shape and corpus validation happen at install time
    /// (`load_signal_cache` on the engines).
    pub fn load(path: &Path) -> Result<Self, SignalCacheError> {
        let text = std::fs::read_to_string(path)
            .map_err(|err| SignalCacheError::Io(format!("read {}: {err}", path.display())))?;
        serde_json::from_str(&text)
            .map_err(|err| SignalCacheError::Io(format!("parse {}: {err:?}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SignalCacheFile {
        let mut cache = SignalCacheFile::empty(IntentLexicon::default(), 3);
        cache.push_row(10, 1.5, &[360.0]);
        cache.push_row(11, 0.0, &[]);
        cache.push_row(12, 2.0, &[420.0, 399.99]);
        cache
    }

    #[test]
    fn shape_check_accepts_a_consistent_file() {
        assert_eq!(sample().check_shape(3, &IntentLexicon::default()), Ok(()));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut cache = sample();
        cache.version = SIGNAL_CACHE_VERSION + 1;
        assert!(matches!(
            cache.check_shape(3, &IntentLexicon::default()),
            Err(SignalCacheError::Version { .. })
        ));
    }

    #[test]
    fn wrong_lexicon_is_rejected() {
        let other = IntentLexicon {
            engagement_weight: 2.0,
            ..IntentLexicon::default()
        };
        assert!(matches!(
            sample().check_shape(3, &other),
            Err(SignalCacheError::LexiconMismatch)
        ));
    }

    #[test]
    fn wrong_length_is_rejected() {
        assert_eq!(
            sample().check_shape(4, &IntentLexicon::default()),
            Err(SignalCacheError::LengthMismatch {
                cached: 3,
                corpus: 4
            })
        );
    }

    #[test]
    fn truncated_columns_are_rejected() {
        let mut cache = sample();
        cache.intents.pop();
        assert!(matches!(
            cache.check_shape(3, &IntentLexicon::default()),
            Err(SignalCacheError::Corrupt(_))
        ));
        let mut cache = sample();
        cache.prices.pop();
        assert!(matches!(
            cache.check_shape(3, &IntentLexicon::default()),
            Err(SignalCacheError::Corrupt(_))
        ));
    }

    #[test]
    fn price_offsets_slice_the_flat_column() {
        let cache = sample();
        let offsets = cache.price_offsets();
        assert_eq!(offsets, vec![0, 1, 1, 3]);
        assert_eq!(&cache.prices[offsets[2]..offsets[3]], &[420.0, 399.99]);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let cache = sample();
        let json = serde_json::to_string(&cache).unwrap();
        assert_eq!(
            serde_json::from_str::<SignalCacheFile>(&json).unwrap(),
            cache
        );
    }

    #[test]
    fn interrupted_save_leaves_the_previous_cache_file_intact() {
        let dir =
            std::env::temp_dir().join(format!("psp_cache_atomic_save_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("signals.json");
        let old = sample();
        old.save(&path).unwrap();
        // A directory squatting on the deterministic temp path makes the
        // next save fail before the published file could be touched — the
        // partial-write simulation.
        std::fs::create_dir(dir.join("signals.json.tmp")).unwrap();
        let mut newer = sample();
        newer.push_row(13, 0.5, &[100.0]);
        assert!(matches!(newer.save(&path), Err(SignalCacheError::Io(_))));
        assert_eq!(SignalCacheFile::load(&path).unwrap(), old);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_display_their_cause() {
        let text = SignalCacheError::LengthMismatch {
            cached: 2,
            corpus: 5,
        }
        .to_string();
        assert!(text.contains('2') && text.contains('5'));
        assert!(SignalCacheError::Version { found: 9 }
            .to_string()
            .contains('9'));
    }
}
