//! Runtime monitoring over sliding analysis windows.
//!
//! The paper's stated aim is "to move from static risk assessment models, as
//! outlined in ISO-21434, to a runtime model environment […] allowing for
//! monitoring internal risks".  This module runs the PSP analysis over a sequence
//! of yearly windows, producing a time series of vector shares and tuned tables per
//! scenario, and detects the year in which the dominant vector flips (the trend
//! inversion of Figure 9 observed as it happens rather than in hindsight).
//!
//! Two evaluation shapes share the same window logic:
//!
//! * [`MonitoringSeries::run`] — one-shot: index a corpus snapshot and sweep
//!   every window over it;
//! * [`LiveMonitor`] — streaming: hold a [`LiveEngine`], interleave
//!   [`LiveMonitor::ingest`] with [`LiveMonitor::series`] so new posts are
//!   absorbed in amortised O(batch) and every re-evaluation reuses the warm
//!   index and memoised text signals instead of rebuilding them.  The live
//!   series is bit-identical to a cold [`MonitoringSeries::run`] over the same
//!   grown corpus.

use crate::config::PspConfig;
use crate::engine::{
    IngestReceipt, LiveEngine, MatrixSpec, SaiScorer, ScoringEngine, ShardedEngine,
    StreamingScorer, WindowAxis,
};
use crate::keyword_db::KeywordDatabase;
use crate::sai::SaiList;
use crate::weights::WeightGenerator;
use iso21434::feasibility::attack_vector::AttackVectorTable;
use serde::{Deserialize, Serialize};
use socialsim::corpus::Corpus;
use socialsim::index::ShardSpec;
use socialsim::post::Post;
use socialsim::time::DateWindow;
use vehicle::attack_surface::AttackVector;

/// The observation produced for one analysis window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowObservation {
    /// First year of the window (inclusive).
    pub from_year: i32,
    /// Last year of the window (inclusive).
    pub to_year: i32,
    /// Number of matching posts across all keywords of the scenario.
    pub posts: usize,
    /// The scenario's total SAI mass in this window (summed over its entries).
    pub scenario_sai: f64,
    /// SAI share per attack vector within the scenario.
    pub vector_shares: Vec<(AttackVector, f64)>,
    /// The dominant vector of the window (`None` when the window has no evidence).
    pub dominant: Option<AttackVector>,
    /// The tuned table generated from this window.
    pub table: AttackVectorTable,
}

/// Which way the scenario's SAI mass moved between two consecutive windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertDirection {
    /// The SAI mass grew beyond the alert threshold — attacker attention is
    /// rising and a TARA re-evaluation is due.
    Rising,
    /// The SAI mass shrank beyond the alert threshold.
    Falling,
}

/// An alert raised when the scenario's SAI mass moves sharply between two
/// consecutive observation windows — the monitoring loop's "re-assess now"
/// signal, cheaper to act on than diffing whole tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaiAlert {
    /// Start year of the window that triggered the alert (the later window).
    pub from_year: i32,
    /// The scenario SAI of the preceding window.
    pub previous_sai: f64,
    /// The scenario SAI of the triggering window.
    pub current_sai: f64,
    /// Rising or falling.
    pub direction: AlertDirection,
}

/// The monitoring time series for one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitoringSeries {
    /// The scenario monitored.
    pub scenario: String,
    /// One observation per window, in chronological order.
    pub observations: Vec<WindowObservation>,
}

/// The sliding-window plan shared by the snapshot and live evaluation paths:
/// `(start, end)` year bounds plus the matching sweep axis.
fn window_plan(from_year: i32, to_year: i32, window_years: i32) -> (Vec<(i32, i32)>, WindowAxis) {
    let window_years = window_years.max(1);
    let mut bounds = Vec::new();
    let mut axis = WindowAxis::new();
    let mut start = from_year;
    while start <= to_year {
        let end = (start + window_years - 1).min(to_year);
        bounds.push((start, end));
        axis = axis.window(DateWindow::years(start, end));
        start += 1;
    }
    (bounds, axis)
}

/// Folds per-window SAI lists into the observation series — the shared tail of
/// both evaluation paths, so a live re-evaluation is the same computation as a
/// cold run by construction.
fn observations_from(
    bounds: &[(i32, i32)],
    sai_lists: &[SaiList],
    scenario: &str,
) -> Vec<WindowObservation> {
    let generator = WeightGenerator::new();
    let mut observations = Vec::new();
    for (&(start, end), sai) in bounds.iter().zip(sai_lists) {
        let entries = sai.scenario_entries(scenario);
        let posts = entries.iter().map(|e| e.posts).sum();
        let scenario_sai = entries.iter().map(|e| e.sai).sum();
        let shares = sai.vector_shares(scenario);
        let dominant = if posts == 0 {
            None
        } else {
            shares
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(v, _)| *v)
        };
        observations.push(WindowObservation {
            from_year: start,
            to_year: end,
            posts,
            scenario_sai,
            vector_shares: shares,
            dominant,
            table: generator.insider_table(sai, scenario),
        });
    }
    observations
}

impl MonitoringSeries {
    /// Runs the PSP analysis for `scenario` over consecutive sliding windows of
    /// `window_years` years, starting each window one year after the previous one,
    /// covering `from_year..=to_year`.
    #[must_use]
    pub fn run(
        corpus: &Corpus,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        scenario: &str,
        from_year: i32,
        to_year: i32,
        window_years: i32,
    ) -> Self {
        // One engine for the whole series: the corpus is indexed and the
        // text-mining signals are computed once, then every window is
        // answered through the prefix-summed sweep plan (`sai_windows`).
        Self::run_on(
            &ScoringEngine::new(corpus),
            db,
            base_config,
            scenario,
            from_year,
            to_year,
            window_years,
        )
    }

    /// Runs the windowed analysis on an already-built engine of any shape —
    /// the entry point warm callers share: [`LiveMonitor::series`] runs it
    /// on its streaming engine, and the service's monitor subscriptions run
    /// it on the snapshot published by each ingest, so a subscription delta
    /// is by construction the same computation as a cold
    /// [`run`](Self::run) over the same corpus (bit-identical; pinned in
    /// `tests/service.rs`).
    #[must_use]
    pub fn run_on<E: SaiScorer + ?Sized>(
        engine: &E,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        scenario: &str,
        from_year: i32,
        to_year: i32,
        window_years: i32,
    ) -> Self {
        let (bounds, axis) = window_plan(from_year, to_year, window_years);
        let sai_lists = engine.sai_windows(db, base_config, &axis);
        Self {
            scenario: scenario.to_string(),
            observations: observations_from(&bounds, &sai_lists, scenario),
        }
    }

    /// Runs the windowed analysis once and folds it into one series **per
    /// scenario** — the multi-profile monitoring entry point.
    ///
    /// The expensive part of a monitoring run — indexing, text mining and the
    /// per-window SAI sweep — does not depend on which scenario is being
    /// watched, so watching `N` scenarios costs one batch-plane run
    /// ([`SaiScorer::sai_matrix`]) plus `N` cheap observation folds, instead
    /// of `N` full [`run`](Self::run)s.  Each returned series is
    /// bit-identical to the corresponding single-scenario `run`.
    #[must_use]
    pub fn run_many(
        corpus: &Corpus,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        scenarios: &[&str],
        from_year: i32,
        to_year: i32,
        window_years: i32,
    ) -> Vec<Self> {
        let engine = ScoringEngine::new(corpus);
        let (bounds, axis) = window_plan(from_year, to_year, window_years);
        let spec = MatrixSpec::new()
            .scenario("monitor", db.clone())
            .config("base", base_config.clone())
            .window_axis(&axis);
        let sai_lists: Vec<SaiList> = engine
            .sai_matrix(&spec)
            .into_cells()
            .into_iter()
            .map(|(_, sai)| sai)
            .collect();
        scenarios
            .iter()
            .map(|scenario| Self {
                scenario: (*scenario).to_string(),
                observations: observations_from(&bounds, &sai_lists, scenario),
            })
            .collect()
    }

    /// The observations with evidence (non-zero posts).
    #[must_use]
    pub fn active_observations(&self) -> Vec<&WindowObservation> {
        self.observations.iter().filter(|o| o.posts > 0).collect()
    }

    /// The first window (by start year) in which the dominant vector differs from
    /// the dominant vector of the first active window — the year PSP would have
    /// flagged the trend inversion.
    #[must_use]
    pub fn inversion_year(&self) -> Option<i32> {
        let active = self.active_observations();
        let baseline = active.first()?.dominant?;
        for observation in &active {
            if let Some(dominant) = observation.dominant {
                if dominant != baseline {
                    return Some(observation.from_year);
                }
            }
        }
        None
    }

    /// The dominant vector per window start year, for plotting / reporting.
    #[must_use]
    pub fn dominant_series(&self) -> Vec<(i32, Option<AttackVector>)> {
        self.observations
            .iter()
            .map(|o| (o.from_year, o.dominant))
            .collect()
    }

    /// Alerts for every pair of consecutive windows whose scenario SAI moved
    /// by more than `threshold` (relative; clamped to be non-negative).
    ///
    /// A window is *rising* when its SAI exceeds the previous window's by more
    /// than the threshold share — including any growth from an empty previous
    /// window — and *falling* symmetrically.  Two empty windows never alert.
    /// `threshold = 0.25` means "changed by more than 25%".
    #[must_use]
    pub fn sai_alerts(&self, threshold: f64) -> Vec<SaiAlert> {
        let threshold = threshold.max(0.0);
        let mut alerts = Vec::new();
        for pair in self.observations.windows(2) {
            let (previous, current) = (&pair[0], &pair[1]);
            let direction = if current.scenario_sai > previous.scenario_sai * (1.0 + threshold) {
                Some(AlertDirection::Rising)
            } else if current.scenario_sai < previous.scenario_sai * (1.0 - threshold) {
                Some(AlertDirection::Falling)
            } else {
                None
            };
            if let Some(direction) = direction {
                alerts.push(SaiAlert {
                    from_year: current.from_year,
                    previous_sai: previous.scenario_sai,
                    current_sai: current.scenario_sai,
                    direction,
                });
            }
        }
        alerts
    }
}

/// A continuously running monitor: one warm streaming engine that interleaves
/// post ingestion with sliding-window re-evaluation.
///
/// This is the paper's continuous-monitoring workflow (Fig. 9/12) as a serving
/// loop: as new social-media posts arrive, [`ingest`](Self::ingest) absorbs
/// them in amortised O(batch) — the inverted index is extended in place and
/// only the new posts ever pay the text-mining pipeline — and
/// [`series`](Self::series) re-runs the windowed analysis on the warm engine.
/// The produced series is bit-identical to a cold [`MonitoringSeries::run`]
/// over the same grown corpus (property-tested), without the full-rebuild
/// cost.
///
/// The monitor is generic over the engine shape: the default is a single
/// [`LiveEngine`] ([`LiveMonitor::new`]); [`LiveMonitor::sharded`] builds the
/// fleet-scale variant over a [`ShardedEngine`] (alias [`ShardedMonitor`]),
/// whose shard-aware ingest and window-pruned sweeps produce the exact same
/// series bit for bit.
#[derive(Debug, Clone)]
pub struct LiveMonitor<E: StreamingScorer = LiveEngine> {
    engine: E,
    db: KeywordDatabase,
    base_config: PspConfig,
    scenario: String,
    window_years: i32,
}

/// A [`LiveMonitor`] running one engine per corpus shard.
pub type ShardedMonitor = LiveMonitor<ShardedEngine>;

impl LiveMonitor {
    /// Creates a monitor over an initial corpus (which may be empty).
    #[must_use]
    pub fn new(
        corpus: Corpus,
        db: KeywordDatabase,
        base_config: PspConfig,
        scenario: &str,
        window_years: i32,
    ) -> Self {
        Self::with_engine(
            LiveEngine::new(corpus),
            db,
            base_config,
            scenario,
            window_years,
        )
    }
}

impl ShardedMonitor {
    /// Creates a monitor whose corpus is partitioned into shards by `spec` —
    /// one engine core per shard, window-pruned sweeps, bit-identical series.
    #[must_use]
    pub fn sharded(
        corpus: Corpus,
        spec: ShardSpec,
        db: KeywordDatabase,
        base_config: PspConfig,
        scenario: &str,
        window_years: i32,
    ) -> Self {
        Self::with_engine(
            ShardedEngine::new(corpus, spec),
            db,
            base_config,
            scenario,
            window_years,
        )
    }
}

impl<E: StreamingScorer> LiveMonitor<E> {
    /// Wraps an already-built engine into a monitor.
    #[must_use]
    pub fn with_engine(
        engine: E,
        db: KeywordDatabase,
        base_config: PspConfig,
        scenario: &str,
        window_years: i32,
    ) -> Self {
        Self {
            engine,
            db,
            base_config,
            scenario: scenario.to_string(),
            window_years,
        }
    }

    /// Ingests a batch of posts into the engine (amortised O(batch); see
    /// [`LiveEngine::ingest`] / [`ShardedEngine::ingest`]).  Returns an
    /// [`IngestReceipt`] stamping the appended count with the engine
    /// generation that publishes the batch.
    pub fn ingest(&mut self, batch: impl IntoIterator<Item = Post>) -> IngestReceipt {
        self.engine.ingest_batch(batch.into_iter().collect())
    }

    /// Re-evaluates the sliding-window series over everything ingested so far,
    /// on the warm engine — through the sweep plan, which stays cached across
    /// re-evaluations and is invalidated exactly when an ingest lands (the
    /// engine's generation counter keys the plan).
    #[must_use]
    pub fn series(&self, from_year: i32, to_year: i32) -> MonitoringSeries {
        MonitoringSeries::run_on(
            &self.engine,
            &self.db,
            &self.base_config,
            &self.scenario,
            from_year,
            to_year,
            self.window_years,
        )
    }

    /// The SAI movement alerts of the current series — see
    /// [`MonitoringSeries::sai_alerts`].
    ///
    /// Convenience that re-runs the full windowed sweep: when you already
    /// hold the [`series`](Self::series) for these bounds (or want alerts at
    /// several thresholds), call [`MonitoringSeries::sai_alerts`] on it
    /// instead of paying the sweep again.
    #[must_use]
    pub fn alerts(&self, from_year: i32, to_year: i32, threshold: f64) -> Vec<SaiAlert> {
        self.series(from_year, to_year).sai_alerts(threshold)
    }

    /// The underlying engine (corpus, index, generation counter).
    #[must_use]
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Number of posts ingested so far.
    #[must_use]
    pub fn post_count(&self) -> usize {
        self.engine.post_count()
    }

    /// The scenario being monitored.
    #[must_use]
    pub fn scenario(&self) -> &str {
        &self.scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialsim::engagement::Engagement;
    use socialsim::post::{Region, TargetApplication};
    use socialsim::scenario;
    use socialsim::time::SimDate;
    use socialsim::user::User;

    fn series(window_years: i32) -> MonitoringSeries {
        MonitoringSeries::run(
            &scenario::passenger_car_europe(42),
            &KeywordDatabase::passenger_car_seed(),
            &PspConfig::passenger_car_europe(),
            "ecm-reprogramming",
            2015,
            2023,
            window_years,
        )
    }

    #[test]
    fn one_observation_per_start_year() {
        let s = series(2);
        assert_eq!(s.observations.len(), 9);
        assert_eq!(s.observations[0].from_year, 2015);
        assert_eq!(s.observations[8].from_year, 2023);
        assert_eq!(s.observations[8].to_year, 2023, "last window is clamped");
    }

    #[test]
    fn early_windows_are_physical_late_windows_are_local() {
        let s = series(2);
        let first = s.observations.first().unwrap();
        let last = s.observations.last().unwrap();
        assert_eq!(first.dominant, Some(AttackVector::Physical));
        assert_eq!(last.dominant, Some(AttackVector::Local));
    }

    #[test]
    fn inversion_year_matches_the_encoded_trend() {
        let s = series(1);
        let year = s.inversion_year().expect("the scene inverts");
        assert!(
            (2020..=2022).contains(&year),
            "inversion detected at {year}, expected around 2021"
        );
    }

    #[test]
    fn windows_without_evidence_have_no_dominant_vector() {
        let s = MonitoringSeries::run(
            &scenario::passenger_car_europe(42),
            &KeywordDatabase::passenger_car_seed(),
            &PspConfig::passenger_car_europe(),
            "ecm-reprogramming",
            2010,
            2012,
            1,
        );
        assert!(s.active_observations().is_empty());
        assert!(s.inversion_year().is_none());
        assert!(s.observations.iter().all(|o| o.dominant.is_none()));
    }

    #[test]
    fn dominant_series_is_chronological() {
        let s = series(1);
        let years: Vec<i32> = s.dominant_series().iter().map(|(y, _)| *y).collect();
        let mut sorted = years.clone();
        sorted.sort_unstable();
        assert_eq!(years, sorted);
    }

    #[test]
    fn window_length_is_clamped_to_one_year() {
        let s = series(0);
        assert_eq!(s.observations.len(), 9);
        assert!(s.observations.iter().all(|o| o.from_year == o.to_year));
    }

    #[test]
    fn run_many_matches_individual_runs_bit_for_bit() {
        let corpus = scenario::passenger_car_europe(42);
        let db = KeywordDatabase::passenger_car_seed();
        let config = PspConfig::passenger_car_europe();
        let scenarios = ["ecm-reprogramming", "emission-defeat", "vehicle-theft"];
        let many = MonitoringSeries::run_many(&corpus, &db, &config, &scenarios, 2015, 2023, 2);
        assert_eq!(many.len(), scenarios.len());
        for (series, scenario) in many.iter().zip(&scenarios) {
            assert_eq!(
                *series,
                MonitoringSeries::run(&corpus, &db, &config, scenario, 2015, 2023, 2)
            );
        }
        // No scenarios — the batch run degenerates to nothing.
        assert!(MonitoringSeries::run_many(&corpus, &db, &config, &[], 2015, 2023, 2).is_empty());
    }

    #[test]
    fn live_monitor_series_matches_a_cold_run_after_chunked_ingestion() {
        let corpus = scenario::passenger_car_europe(42);
        let posts = corpus.posts().to_vec();
        let mut monitor = LiveMonitor::new(
            Corpus::new(),
            KeywordDatabase::passenger_car_seed(),
            PspConfig::passenger_car_europe(),
            "ecm-reprogramming",
            2,
        );
        for chunk in posts.chunks(97) {
            monitor.ingest(chunk.to_vec());
        }
        // Ingest order == original corpus order, so the warm series is
        // bit-identical to the one-shot run on the same posts.
        assert_eq!(monitor.series(2015, 2023), series(2));
    }

    #[test]
    fn live_monitor_detects_the_inversion_as_posts_stream_in() {
        let corpus = scenario::passenger_car_europe(42);
        let mut by_year: std::collections::BTreeMap<i32, Vec<_>> =
            std::collections::BTreeMap::new();
        for post in corpus.posts() {
            by_year
                .entry(post.date().year())
                .or_default()
                .push(post.clone());
        }
        let mut monitor = LiveMonitor::new(
            Corpus::new(),
            KeywordDatabase::passenger_car_seed(),
            PspConfig::passenger_car_europe(),
            "ecm-reprogramming",
            1,
        );
        let mut detected_at_ingest_year = None;
        for (year, batch) in by_year {
            monitor.ingest(batch);
            if detected_at_ingest_year.is_none() {
                if let Some(inversion) = monitor.series(2015, year).inversion_year() {
                    detected_at_ingest_year = Some((year, inversion));
                }
            }
        }
        let (seen_at, inversion) = detected_at_ingest_year.expect("the scene inverts");
        assert!(
            (2020..=2022).contains(&inversion),
            "inversion at {inversion}, detected while ingesting {seen_at}"
        );
        // Detection happened the year the evidence arrived, not later.
        assert!(seen_at >= inversion);
    }

    /// A Europe/excavator post mentioning the DPF-tampering scenario, for
    /// handcrafting SAI bursts year by year.
    fn dpf_post(id: u64, year: i32, text: &str) -> Post {
        Post::new(
            id,
            User::new("alert_user", 200, 36),
            text,
            vec![],
            SimDate::new(year, 6, 15),
            Region::Europe,
            TargetApplication::Excavator,
            Engagement::new(2_000, 60, 12, 6),
        )
    }

    /// One quiet year, one burst year, one quiet year — the SAI mass rises
    /// then falls across consecutive windows.
    fn burst_corpus() -> Corpus {
        let mut posts = vec![dpf_post(1, 2018, "thinking about a #dpfdelete")];
        for i in 0..12 {
            posts.push(dpf_post(
                100 + i,
                2019,
                "#dpfdelete kit for sale 360 EUR installs fast",
            ));
        }
        posts.push(dpf_post(900, 2020, "kept one #dpfdelete running"));
        Corpus::from_posts(posts)
    }

    #[test]
    fn rising_and_falling_sai_raise_alerts_across_consecutive_windows() {
        let monitor = LiveMonitor::new(
            burst_corpus(),
            KeywordDatabase::excavator_seed(),
            PspConfig::excavator_europe(),
            "dpf-tampering",
            1,
        );
        let alerts = monitor.alerts(2018, 2020, 0.5);
        assert_eq!(alerts.len(), 2, "one rising and one falling: {alerts:?}");
        assert_eq!(alerts[0].from_year, 2019);
        assert_eq!(alerts[0].direction, AlertDirection::Rising);
        assert!(alerts[0].current_sai > alerts[0].previous_sai * 1.5);
        assert_eq!(alerts[1].from_year, 2020);
        assert_eq!(alerts[1].direction, AlertDirection::Falling);
        assert!(alerts[1].current_sai < alerts[1].previous_sai * 0.5);
    }

    #[test]
    fn growth_from_an_empty_window_is_a_rising_alert() {
        let posts: Vec<Post> = (0..5)
            .map(|i| dpf_post(i, 2020, "#dpfdelete day"))
            .collect();
        let monitor = LiveMonitor::new(
            Corpus::from_posts(posts),
            KeywordDatabase::excavator_seed(),
            PspConfig::excavator_europe(),
            "dpf-tampering",
            1,
        );
        let alerts = monitor.alerts(2019, 2020, 0.25);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].direction, AlertDirection::Rising);
        assert_eq!(alerts[0].previous_sai, 0.0);
        assert!(alerts[0].current_sai > 0.0);
        // Two consecutive empty windows never alert.
        assert!(monitor.alerts(2015, 2018, 0.25).is_empty());
    }

    #[test]
    fn alerts_respect_the_threshold_and_clamp_negative_ones() {
        let monitor = LiveMonitor::new(
            burst_corpus(),
            KeywordDatabase::excavator_seed(),
            PspConfig::excavator_europe(),
            "dpf-tampering",
            1,
        );
        // A huge threshold silences the falling alert (and a rising alert
        // needs more than a 100x jump).
        let alerts = monitor.alerts(2018, 2020, 99.0);
        assert!(alerts.iter().all(|a| a.direction == AlertDirection::Rising));
        // Negative thresholds clamp to zero: any strict change alerts.
        let strict = monitor.alerts(2018, 2020, -1.0);
        assert_eq!(strict.len(), 2);
    }

    /// Two years with the *same* posts (and therefore bit-identical SAI):
    /// consecutive equal windows must never alert, even at threshold zero.
    fn steady_corpus() -> Corpus {
        let mut posts = Vec::new();
        for (i, year) in [(0_u64, 2019), (1, 2020)] {
            for j in 0..4 {
                posts.push(dpf_post(
                    i * 100 + j,
                    year,
                    "#dpfdelete kit 360 EUR same every year",
                ));
            }
        }
        Corpus::from_posts(posts)
    }

    #[test]
    fn exactly_equal_consecutive_sai_never_alerts() {
        let monitor = LiveMonitor::new(
            steady_corpus(),
            KeywordDatabase::excavator_seed(),
            PspConfig::excavator_europe(),
            "dpf-tampering",
            1,
        );
        let series = monitor.series(2019, 2020);
        let sai: Vec<f64> = series.observations.iter().map(|o| o.scenario_sai).collect();
        assert_eq!(sai[0], sai[1], "the two years carry identical evidence");
        assert!(sai[0] > 0.0);
        // Both comparisons are strict, so equality is quiet at any threshold —
        // including zero, where any genuine movement would alert.
        for threshold in [0.0, 0.25, 5.0] {
            assert!(
                series.sai_alerts(threshold).is_empty(),
                "threshold {threshold}"
            );
        }
    }

    #[test]
    fn single_window_series_has_no_consecutive_pairs_to_alert_on() {
        let monitor = LiveMonitor::new(
            burst_corpus(),
            KeywordDatabase::excavator_seed(),
            PspConfig::excavator_europe(),
            "dpf-tampering",
            1,
        );
        let series = monitor.series(2019, 2019);
        assert_eq!(series.observations.len(), 1);
        assert!(series.sai_alerts(0.0).is_empty());
    }

    #[test]
    fn empty_windows_stay_nan_free_and_quiet() {
        // A span with no evidence at all: every observation must report an
        // exact 0.0 (never NaN — downstream threshold comparisons would
        // silently go quiet on NaN), and no alert may fire.
        let monitor = LiveMonitor::new(
            burst_corpus(),
            KeywordDatabase::excavator_seed(),
            PspConfig::excavator_europe(),
            "dpf-tampering",
            1,
        );
        let series = monitor.series(2010, 2015);
        assert_eq!(series.observations.len(), 6);
        for observation in &series.observations {
            assert_eq!(observation.scenario_sai, 0.0);
            assert!(observation.scenario_sai.is_finite());
            assert!(observation
                .vector_shares
                .iter()
                .all(|(_, share)| share.is_finite()));
        }
        assert!(series.sai_alerts(0.0).is_empty());
    }

    #[test]
    fn live_alerts_match_cold_series_alerts_after_ingest() {
        let posts = burst_corpus().posts().to_vec();
        let mut monitor = LiveMonitor::new(
            Corpus::new(),
            KeywordDatabase::excavator_seed(),
            PspConfig::excavator_europe(),
            "dpf-tampering",
            1,
        );
        for chunk in posts.chunks(3) {
            monitor.ingest(chunk.to_vec());
        }
        let cold = MonitoringSeries::run(
            &burst_corpus(),
            &KeywordDatabase::excavator_seed(),
            &PspConfig::excavator_europe(),
            "dpf-tampering",
            2018,
            2020,
            1,
        );
        assert_eq!(monitor.alerts(2018, 2020, 0.5), cold.sai_alerts(0.5));
        assert_eq!(monitor.series(2018, 2020), cold);
    }

    #[test]
    fn sharded_monitor_series_is_bit_identical_to_the_live_monitor() {
        let corpus = scenario::passenger_car_europe(42);
        let posts = corpus.posts().to_vec();
        let db = KeywordDatabase::passenger_car_seed();
        let config = PspConfig::passenger_car_europe();
        let mut live = LiveMonitor::new(
            Corpus::new(),
            db.clone(),
            config.clone(),
            "ecm-reprogramming",
            2,
        );
        let mut sharded = LiveMonitor::sharded(
            Corpus::new(),
            ShardSpec::yearly(),
            db,
            config,
            "ecm-reprogramming",
            2,
        );
        for chunk in posts.chunks(97) {
            live.ingest(chunk.to_vec());
            sharded.ingest(chunk.to_vec());
        }
        assert_eq!(live.post_count(), sharded.post_count());
        assert!(sharded.engine().shard_count() > 1);
        assert_eq!(sharded.series(2015, 2023), live.series(2015, 2023));
        assert_eq!(
            sharded.alerts(2015, 2023, 0.3),
            live.alerts(2015, 2023, 0.3)
        );
    }

    #[test]
    fn live_monitor_on_an_empty_corpus_reports_no_evidence() {
        let monitor = LiveMonitor::new(
            Corpus::new(),
            KeywordDatabase::passenger_car_seed(),
            PspConfig::passenger_car_europe(),
            "ecm-reprogramming",
            1,
        );
        let s = monitor.series(2015, 2020);
        assert_eq!(s.observations.len(), 6);
        assert!(s.active_observations().is_empty());
        assert_eq!(monitor.post_count(), 0);
        assert_eq!(monitor.scenario(), "ecm-reprogramming");
    }
}
