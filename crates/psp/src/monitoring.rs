//! Runtime monitoring over sliding analysis windows.
//!
//! The paper's stated aim is "to move from static risk assessment models, as
//! outlined in ISO-21434, to a runtime model environment […] allowing for
//! monitoring internal risks".  This module runs the PSP analysis over a sequence
//! of yearly windows, producing a time series of vector shares and tuned tables per
//! scenario, and detects the year in which the dominant vector flips (the trend
//! inversion of Figure 9 observed as it happens rather than in hindsight).

use crate::config::PspConfig;
use crate::engine::ScoringEngine;
use crate::keyword_db::KeywordDatabase;
use crate::weights::WeightGenerator;
use iso21434::feasibility::attack_vector::AttackVectorTable;
use serde::{Deserialize, Serialize};
use socialsim::corpus::Corpus;
use socialsim::time::DateWindow;
use vehicle::attack_surface::AttackVector;

/// The observation produced for one analysis window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowObservation {
    /// First year of the window (inclusive).
    pub from_year: i32,
    /// Last year of the window (inclusive).
    pub to_year: i32,
    /// Number of matching posts across all keywords of the scenario.
    pub posts: usize,
    /// SAI share per attack vector within the scenario.
    pub vector_shares: Vec<(AttackVector, f64)>,
    /// The dominant vector of the window (`None` when the window has no evidence).
    pub dominant: Option<AttackVector>,
    /// The tuned table generated from this window.
    pub table: AttackVectorTable,
}

/// The monitoring time series for one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitoringSeries {
    /// The scenario monitored.
    pub scenario: String,
    /// One observation per window, in chronological order.
    pub observations: Vec<WindowObservation>,
}

impl MonitoringSeries {
    /// Runs the PSP analysis for `scenario` over consecutive sliding windows of
    /// `window_years` years, starting each window one year after the previous one,
    /// covering `from_year..=to_year`.
    #[must_use]
    pub fn run(
        corpus: &Corpus,
        db: &KeywordDatabase,
        base_config: &PspConfig,
        scenario: &str,
        from_year: i32,
        to_year: i32,
        window_years: i32,
    ) -> Self {
        let window_years = window_years.max(1);
        let generator = WeightGenerator::new();

        // One engine for the whole series: the corpus is indexed and the
        // text-mining signals are computed once, then every window is answered
        // from the index through the batch multi-query API.
        let engine = ScoringEngine::new(corpus);
        let mut window_bounds = Vec::new();
        let mut configs = Vec::new();
        let mut start = from_year;
        while start <= to_year {
            let end = (start + window_years - 1).min(to_year);
            window_bounds.push((start, end));
            configs.push(
                base_config
                    .clone()
                    .with_window(DateWindow::years(start, end)),
            );
            start += 1;
        }
        let sai_lists = engine.sai_lists(db, &configs);

        let mut observations = Vec::new();
        for ((start, end), sai) in window_bounds.into_iter().zip(sai_lists) {
            let entries = sai.scenario_entries(scenario);
            let posts = entries.iter().map(|e| e.posts).sum();
            let shares = sai.vector_shares(scenario);
            let dominant = if posts == 0 {
                None
            } else {
                shares
                    .iter()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(v, _)| *v)
            };
            observations.push(WindowObservation {
                from_year: start,
                to_year: end,
                posts,
                vector_shares: shares,
                dominant,
                table: generator.insider_table(&sai, scenario),
            });
        }
        Self {
            scenario: scenario.to_string(),
            observations,
        }
    }

    /// The observations with evidence (non-zero posts).
    #[must_use]
    pub fn active_observations(&self) -> Vec<&WindowObservation> {
        self.observations.iter().filter(|o| o.posts > 0).collect()
    }

    /// The first window (by start year) in which the dominant vector differs from
    /// the dominant vector of the first active window — the year PSP would have
    /// flagged the trend inversion.
    #[must_use]
    pub fn inversion_year(&self) -> Option<i32> {
        let active = self.active_observations();
        let baseline = active.first()?.dominant?;
        for observation in &active {
            if let Some(dominant) = observation.dominant {
                if dominant != baseline {
                    return Some(observation.from_year);
                }
            }
        }
        None
    }

    /// The dominant vector per window start year, for plotting / reporting.
    #[must_use]
    pub fn dominant_series(&self) -> Vec<(i32, Option<AttackVector>)> {
        self.observations
            .iter()
            .map(|o| (o.from_year, o.dominant))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialsim::scenario;

    fn series(window_years: i32) -> MonitoringSeries {
        MonitoringSeries::run(
            &scenario::passenger_car_europe(42),
            &KeywordDatabase::passenger_car_seed(),
            &PspConfig::passenger_car_europe(),
            "ecm-reprogramming",
            2015,
            2023,
            window_years,
        )
    }

    #[test]
    fn one_observation_per_start_year() {
        let s = series(2);
        assert_eq!(s.observations.len(), 9);
        assert_eq!(s.observations[0].from_year, 2015);
        assert_eq!(s.observations[8].from_year, 2023);
        assert_eq!(s.observations[8].to_year, 2023, "last window is clamped");
    }

    #[test]
    fn early_windows_are_physical_late_windows_are_local() {
        let s = series(2);
        let first = s.observations.first().unwrap();
        let last = s.observations.last().unwrap();
        assert_eq!(first.dominant, Some(AttackVector::Physical));
        assert_eq!(last.dominant, Some(AttackVector::Local));
    }

    #[test]
    fn inversion_year_matches_the_encoded_trend() {
        let s = series(1);
        let year = s.inversion_year().expect("the scene inverts");
        assert!(
            (2020..=2022).contains(&year),
            "inversion detected at {year}, expected around 2021"
        );
    }

    #[test]
    fn windows_without_evidence_have_no_dominant_vector() {
        let s = MonitoringSeries::run(
            &scenario::passenger_car_europe(42),
            &KeywordDatabase::passenger_car_seed(),
            &PspConfig::passenger_car_europe(),
            "ecm-reprogramming",
            2010,
            2012,
            1,
        );
        assert!(s.active_observations().is_empty());
        assert!(s.inversion_year().is_none());
        assert!(s.observations.iter().all(|o| o.dominant.is_none()));
    }

    #[test]
    fn dominant_series_is_chronological() {
        let s = series(1);
        let years: Vec<i32> = s.dominant_series().iter().map(|(y, _)| *y).collect();
        let mut sorted = years.clone();
        sorted.sort_unstable();
        assert_eq!(years, sorted);
    }

    #[test]
    fn window_length_is_clamped_to_one_year() {
        let s = series(0);
        assert_eq!(s.observations.len(), 9);
        assert!(s.observations.iter().all(|o| o.from_year == o.to_year));
    }
}
