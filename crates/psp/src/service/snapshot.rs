//! Snapshot isolation: an epoch/`Arc`-swap publication point between one
//! writer (ingest) and many readers (score/sweep/matrix requests).
//!
//! The engines' `&mut self` ingest path serializes everything behind one
//! borrow.  [`SnapshotPublisher`] breaks that coupling: the currently
//! published engine lives behind an `Arc` inside an `RwLock`, readers take an
//! [`EngineSnapshot`] (an `Arc` clone — O(1), no data copied) and score
//! against that immutable generation for as long as they like, while the
//! writer builds the *next* generation on a private deep copy and publishes
//! it with a single pointer swap.
//!
//! Guarantees:
//!
//! * **readers never block on ingest** — the write lock is held only for the
//!   pointer swap, never while the batch is being indexed or mined;
//! * **no torn reads** — a snapshot is immutable for its whole lifetime, so
//!   every result computed from it is bit-identical to a standalone engine at
//!   the snapshot's generation (property-tested in `tests/service.rs`);
//! * **writer serialization** — a dedicated ingest mutex orders concurrent
//!   writers, so generations advance one batch at a time.
//!
//! The cost model is copy-on-publish: each non-empty batch deep-clones the
//! published engine (O(corpus), off the reader path) before appending.  The
//! clone starts from the *published* engine, so per-post signals that readers
//! have lazily warmed — the signal cells are shared `OnceLock`s — carry into
//! the next generation instead of being re-mined.

use crate::engine::{IngestReceipt, StreamingScorer};
use crate::error::PspError;
use socialsim::post::Post;
use std::ops::Deref;
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// An immutable handle on one published engine generation.
///
/// Cloning is O(1) (an `Arc` clone) and the snapshot derefs to the engine, so
/// every scoring entry point (`sai_list`, `sai_windows`, `sai_matrix`, cache
/// export) works directly on it.  A snapshot taken before an ingest keeps
/// answering for its own generation even after newer generations publish.
#[derive(Debug)]
pub struct EngineSnapshot<E> {
    engine: Arc<E>,
}

impl<E> Clone for EngineSnapshot<E> {
    fn clone(&self) -> Self {
        Self {
            engine: Arc::clone(&self.engine),
        }
    }
}

impl<E> Deref for EngineSnapshot<E> {
    type Target = E;

    fn deref(&self) -> &E {
        &self.engine
    }
}

/// The publication point: one writer ingests, any number of readers snapshot.
#[derive(Debug)]
pub struct SnapshotPublisher<E> {
    /// The currently published generation.  Readers hold the lock only long
    /// enough to clone the `Arc`; the writer only long enough to swap it.
    published: RwLock<Arc<E>>,
    /// Serializes writers: the next generation is built outside any lock on
    /// `published`, but one batch at a time.
    ingest_lock: Mutex<()>,
}

impl<E: StreamingScorer + Clone> SnapshotPublisher<E> {
    /// Publishes `engine` as the initial generation.
    #[must_use]
    pub fn new(engine: E) -> Self {
        Self {
            published: RwLock::new(Arc::new(engine)),
            ingest_lock: Mutex::new(()),
        }
    }

    /// The currently published generation, as an immutable snapshot.
    ///
    /// Lock poisoning is recovered, not propagated: the protected value is
    /// only ever a fully-formed `Arc` (swapped atomically in
    /// [`ingest`](Self::ingest)), so a panic elsewhere can never leave it
    /// torn, and a poisoned-lock panic here would cascade one bad request
    /// into service-wide failure.
    #[must_use]
    pub fn snapshot(&self) -> EngineSnapshot<E> {
        let published = self
            .published
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        EngineSnapshot {
            engine: Arc::clone(&published),
        }
    }

    /// Ingests a batch by building and publishing the next generation:
    /// deep-clone the published engine, append the batch into the clone, swap
    /// the published pointer.  Readers keep scoring the old generation
    /// throughout; the new one becomes visible atomically.
    ///
    /// An empty batch publishes nothing (no clone, no swap) and returns a
    /// receipt at the current generation, mirroring the engines' own
    /// empty-ingest behaviour.
    pub fn ingest(&self, batch: Vec<Post>) -> IngestReceipt {
        self.ingest_logged(batch, |_, _| Ok(()))
            .expect("no-op log cannot fail")
    }

    /// [`ingest`](Self::ingest) with a write-ahead hook: `log` runs under the
    /// ingest lock with the batch and the generation it will publish,
    /// **before** the new generation is built or swapped.  If `log` errors
    /// (e.g. a WAL append could not be made durable), nothing is published
    /// and the error is returned — the durability invariant is exactly
    /// "acked batches are on disk first".
    ///
    /// # Errors
    ///
    /// Whatever `log` returns; the publisher itself never fails.
    pub fn ingest_logged(
        &self,
        batch: Vec<Post>,
        log: impl FnOnce(&[Post], u64) -> Result<(), PspError>,
    ) -> Result<IngestReceipt, PspError> {
        let _writer = self
            .ingest_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let current = self.snapshot();
        if batch.is_empty() {
            return Ok(IngestReceipt {
                appended: 0,
                generation: current.generation(),
            });
        }
        // WAL-append happens-before publish: a crash after this point
        // replays the batch; a crash (or log failure) before it means the
        // batch was never acked, so losing it is correct.
        log(&batch, current.generation() + 1)?;
        let mut next = (*current.engine).clone();
        let receipt = next.ingest_batch(batch);
        let mut published = self
            .published
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        *published = Arc::new(next);
        Ok(receipt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PspConfig;
    use crate::engine::LiveEngine;
    use crate::keyword_db::KeywordDatabase;
    use socialsim::scenario;

    #[test]
    fn snapshots_pin_their_generation_across_ingest() {
        let seed = scenario::excavator_europe(7);
        let extra = scenario::excavator_europe(8).posts().to_vec();
        let db = KeywordDatabase::excavator_seed();
        let config = PspConfig::excavator_europe();

        let publisher = SnapshotPublisher::new(LiveEngine::new(seed.clone()));
        let old = publisher.snapshot();
        let before = old.sai_list(&db, &config);

        let receipt = publisher.ingest(extra.clone());
        assert_eq!(receipt.appended, extra.len());
        assert_eq!(receipt.generation, 1);

        // The old snapshot still answers for generation 0, bit for bit...
        assert_eq!(old.generation(), 0);
        assert_eq!(old.sai_list(&db, &config), before);
        assert_eq!(before, LiveEngine::new(seed.clone()).sai_list(&db, &config));
        // ...while a fresh snapshot serves the grown corpus.
        let new = publisher.snapshot();
        assert_eq!(new.generation(), 1);
        let mut grown = LiveEngine::new(seed);
        grown.ingest(extra);
        assert_eq!(new.sai_list(&db, &config), grown.sai_list(&db, &config));
    }

    #[test]
    fn empty_ingest_publishes_nothing() {
        let publisher = SnapshotPublisher::new(LiveEngine::new(scenario::excavator_europe(7)));
        let before = publisher.snapshot();
        let receipt = publisher.ingest(Vec::new());
        assert_eq!(receipt.appended, 0);
        assert_eq!(receipt.generation, 0);
        // Same Arc — nothing was cloned or swapped.
        assert!(Arc::ptr_eq(&before.engine, &publisher.snapshot().engine));
    }
}
