//! The TARA service daemon core: a protocol-agnostic request/response layer
//! over the scoring engines.
//!
//! The monitoring examples all hand-roll the same loop — ingest a batch,
//! re-score, repeat — with the engine's `&mut self` forcing every consumer to
//! serialize behind one borrow.  This module turns that inside out:
//!
//! * [`ServiceRequest`] / [`ServiceResponse`] are plain serializable enums —
//!   the whole service surface, independent of any transport.  The stdin
//!   line-JSON daemon (`examples/tara_daemon.rs`) is ~a page of glue over
//!   [`wire`]; an embedded caller skips the wire format entirely and calls
//!   [`TaraService::handle`] with the same types.
//! * [`TaraService`] executes requests against an engine published through a
//!   [`SnapshotPublisher`]: each request scores
//!   one immutable generation end to end, while ingest builds the next
//!   generation off to the side.  Readers never block on writers and every
//!   response stamps the generation it was computed at.
//! * [`TaraService::submit`] runs a request on the built-in
//!   [`WorkerPool`] (plain threads + channels — no async
//!   executor in the offline dependency closure) and hands back a
//!   [`Ticket`] to wait on; [`TaraService::handle`] is the
//!   synchronous spelling of the same computation.
//!
//! Scenario databases and scoring configurations are looked up by name in a
//! [`ServiceRegistry`], so requests carry short names instead of inlined
//! configuration blobs.  All failures fold into
//! [`PspError`] and travel as
//! [`ServiceResponse::Error`] — the service never panics on bad input.
//!
//! The serving plane is hardened for production traffic:
//!
//! * **Panic resilience** — every pooled request runs under `catch_unwind`;
//!   a panicking request answers its [`Ticket`] with a structured
//!   `internal-error` response and the worker thread survives, so the pool
//!   never silently shrinks (see [`runtime`]).
//! * **Deadlines & cancellation** — [`TaraService::submit_with_deadline`]
//!   attaches a [`CancelToken`] that sweeps and
//!   matrices check cooperatively between windows/cells; an overrun answers
//!   [`ServiceResponse::Expired`] instead of burning a worker, and
//!   [`Ticket::wait_timeout`] bounds the client-side wait.  `Status`
//!   reports queued/in-flight depth.
//! * **Subscriptions** — [`ServiceRequest::Subscribe`] (or the embedded
//!   [`TaraService::subscribe`]) registers a [`MonitorSpec`]; after every
//!   successful ingest publication the service pushes a
//!   [`ServiceEvent::MonitorDelta`] — the re-evaluated
//!   [`MonitoringSeries`] plus its `sai_alerts` firings, computed on the
//!   just-published snapshot — replacing poll-by-`Sweep`.
//! * **Scheduled sweeps** — [`ServiceRequest::Schedule`] (or
//!   [`TaraService::schedule`]) re-runs a read-only request at a fixed
//!   interval against the latest snapshot on a dedicated scheduler thread,
//!   delivering [`ServiceEvent::ScheduledRun`]s through the same event
//!   channels.

pub mod durability;
pub mod journal;
pub mod net;
pub mod runtime;
mod scheduler;
pub mod snapshot;
pub mod wire;

use crate::config::PspConfig;
use crate::engine::{CellId, LiveEngine, MatrixSpec, SignalCacheFile, StreamingScorer, WindowAxis};
use crate::error::PspError;
use crate::keyword_db::KeywordDatabase;
use crate::monitoring::{MonitoringSeries, SaiAlert};
use crate::sai::SaiList;
use durability::{DurabilityStats, DurableStore};
use net::{NetMetrics, NetStatus};
use runtime::{CancelToken, PoolMetrics, Ticket, WorkerPool};
use scheduler::SchedulerQueue;
use serde::{Deserialize, Serialize};
use snapshot::{EngineSnapshot, SnapshotPublisher};
use socialsim::post::Post;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

/// Renders a caught panic payload as the `detail` of an `internal-error`
/// response (panics carry `&str` or `String` payloads in practice).
pub(crate) fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "request panicked with a non-string payload".to_string()
    }
}

/// Named keyword databases and scoring configurations the service can be
/// asked for.  Requests reference entries by name; unknown names answer with
/// `unknown-database` / `unknown-config` errors listing nothing sensitive.
#[derive(Debug, Clone, Default)]
pub struct ServiceRegistry {
    databases: Vec<(String, KeywordDatabase)>,
    configs: Vec<(String, PspConfig)>,
}

impl ServiceRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a keyword database under `name` (last registration wins on
    /// duplicate names).
    #[must_use]
    pub fn database(mut self, name: impl Into<String>, db: KeywordDatabase) -> Self {
        let name = name.into();
        self.databases.retain(|(existing, _)| *existing != name);
        self.databases.push((name, db));
        self
    }

    /// Registers a scoring configuration under `name` (last registration wins
    /// on duplicate names).
    #[must_use]
    pub fn config(mut self, name: impl Into<String>, config: PspConfig) -> Self {
        let name = name.into();
        self.configs.retain(|(existing, _)| *existing != name);
        self.configs.push((name, config));
        self
    }

    /// Looks a database up by name.
    ///
    /// # Errors
    ///
    /// [`PspError::UnknownDatabase`] when the name is not registered.
    pub fn lookup_database(&self, name: &str) -> Result<&KeywordDatabase, PspError> {
        self.databases
            .iter()
            .find(|(registered, _)| registered == name)
            .map(|(_, db)| db)
            .ok_or_else(|| PspError::UnknownDatabase { name: name.into() })
    }

    /// Looks a configuration up by name.
    ///
    /// # Errors
    ///
    /// [`PspError::UnknownConfig`] when the name is not registered.
    pub fn lookup_config(&self, name: &str) -> Result<&PspConfig, PspError> {
        self.configs
            .iter()
            .find(|(registered, _)| registered == name)
            .map(|(_, config)| config)
            .ok_or_else(|| PspError::UnknownConfig { name: name.into() })
    }

    /// The registered database names, in registration order.
    #[must_use]
    pub fn database_names(&self) -> Vec<String> {
        self.databases
            .iter()
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// The registered configuration names, in registration order.
    #[must_use]
    pub fn config_names(&self) -> Vec<String> {
        self.configs.iter().map(|(name, _)| name.clone()).collect()
    }
}

/// The wire form of a failed request: a stable machine-matchable `kind` (see
/// [`PspError::kind`]) plus human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceError {
    /// Stable kebab-case discriminant, e.g. `unknown-database`.
    pub kind: String,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl From<PspError> for ServiceError {
    fn from(error: PspError) -> Self {
        Self {
            kind: error.kind().to_string(),
            detail: error.to_string(),
        }
    }
}

/// A request to the TARA service.  Databases and configurations are referred
/// to by their [`ServiceRegistry`] names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceRequest {
    /// Score one (database, configuration) pair: the full SAI list at the
    /// current generation.
    Score {
        /// Registered database name.
        db: String,
        /// Registered configuration name.
        config: String,
    },
    /// Score one pair across a window axis (monitoring sweep): one SAI list
    /// per axis entry.
    Sweep {
        /// Registered database name.
        db: String,
        /// Registered configuration name.
        config: String,
        /// The windows to resolve, in order.
        windows: WindowAxis,
    },
    /// Resolve a (scenario × configuration × window) cross-product.
    Matrix {
        /// Registered database names, one per matrix scenario row.
        scenarios: Vec<String>,
        /// Registered configuration names, one per matrix configuration
        /// column.
        configs: Vec<String>,
        /// The window grid; empty means each configuration's own window.
        windows: WindowAxis,
    },
    /// Append a batch of posts, publishing the next engine generation.
    Ingest {
        /// The posts to append.
        posts: Vec<Post>,
    },
    /// Export the memoised per-post signal cache at the current generation.
    ExportCache,
    /// Publish an atomic checkpoint of the current generation to the
    /// service's data directory (corpus + signal cache + manifest, written
    /// to temp files and renamed into place), then compact the write-ahead
    /// journal.  Answers `not-durable` when the service runs without a data
    /// directory.
    Checkpoint,
    /// Service liveness, corpus size, registry listing and pool depth.
    Status,
    /// Register a monitor subscription: after every successful ingest
    /// publication, the service pushes a [`ServiceEvent::MonitorDelta`] with
    /// the re-evaluated series and alert firings for this spec.
    Subscribe {
        /// What to monitor and where to alert.
        spec: MonitorSpec,
    },
    /// Remove a monitor subscription by id.
    Unsubscribe {
        /// The id returned by [`ServiceResponse::Subscribed`].
        id: u64,
    },
    /// Register a recurring job: re-run a read-only request every
    /// `every_ms` milliseconds against the latest snapshot, delivering each
    /// result as a [`ServiceEvent::ScheduledRun`].  Mutating or
    /// registration requests (`Ingest`, `Subscribe`, `Schedule`, …) cannot
    /// be scheduled.
    Schedule {
        /// Interval between runs, in milliseconds (clamped to ≥ 1).
        every_ms: u64,
        /// The read-only request to re-run.
        request: Box<ServiceRequest>,
    },
    /// Remove a scheduled job by id.
    Unschedule {
        /// The id returned by [`ServiceResponse::Scheduled`].
        id: u64,
    },
}

impl ServiceRequest {
    /// Whether this request may be driven by the scheduler: snapshot
    /// consumers only, so a recurring job can never mutate the engine or
    /// recursively register more work.  `Checkpoint` is schedulable — it
    /// persists a snapshot without mutating the served engine — but only on
    /// a durable service (enforced at registration).
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        matches!(
            self,
            ServiceRequest::Score { .. }
                | ServiceRequest::Sweep { .. }
                | ServiceRequest::Matrix { .. }
                | ServiceRequest::ExportCache
                | ServiceRequest::Checkpoint
                | ServiceRequest::Status
        )
    }

    /// The stable variant name, used by structured errors that reject a
    /// request kind (e.g. `not-schedulable`).
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            ServiceRequest::Score { .. } => "Score",
            ServiceRequest::Sweep { .. } => "Sweep",
            ServiceRequest::Matrix { .. } => "Matrix",
            ServiceRequest::Ingest { .. } => "Ingest",
            ServiceRequest::ExportCache => "ExportCache",
            ServiceRequest::Checkpoint => "Checkpoint",
            ServiceRequest::Status => "Status",
            ServiceRequest::Subscribe { .. } => "Subscribe",
            ServiceRequest::Unsubscribe { .. } => "Unsubscribe",
            ServiceRequest::Schedule { .. } => "Schedule",
            ServiceRequest::Unschedule { .. } => "Unschedule",
        }
    }
}

/// What one monitor subscription watches: the monitoring-series shape
/// ([`MonitoringSeries::run`]) plus the alert threshold its
/// [`MonitoringSeries::sai_alerts`] fire at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorSpec {
    /// Registered database name.
    pub db: String,
    /// Registered configuration name.
    pub config: String,
    /// The scenario whose SAI mass is folded into observations.
    pub scenario: String,
    /// First window start year (inclusive).
    pub from_year: i32,
    /// Last window start year (inclusive).
    pub to_year: i32,
    /// Window length in years (clamped to ≥ 1, as in monitoring runs).
    pub window_years: i32,
    /// Relative SAI-movement threshold for alert firings (0.25 = "moved by
    /// more than 25% between consecutive windows").
    pub alert_threshold: f64,
}

/// A response from the TARA service.  Every scoring response stamps the
/// engine generation it was computed at, so callers can correlate results
/// with ingests even when requests run concurrently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceResponse {
    /// Answer to [`ServiceRequest::Score`].
    Score {
        /// Generation the list was computed at.
        generation: u64,
        /// The scored SAI list.
        sai: SaiList,
    },
    /// Answer to [`ServiceRequest::Sweep`]: one list per axis entry, in axis
    /// order.
    Sweep {
        /// Generation the lists were computed at.
        generation: u64,
        /// One SAI list per window.
        lists: Vec<SaiList>,
    },
    /// Answer to [`ServiceRequest::Matrix`]: cells in deterministic
    /// [`CellId`] order (scenario-major, then configuration, then window).
    Matrix {
        /// Generation the cells were computed at.
        generation: u64,
        /// The resolved cells.
        cells: Vec<(CellId, SaiList)>,
    },
    /// Answer to [`ServiceRequest::Ingest`].
    Ingested {
        /// Number of posts appended.
        appended: usize,
        /// Generation the batch is published under.
        generation: u64,
    },
    /// Answer to [`ServiceRequest::ExportCache`].
    Cache {
        /// Generation the cache was exported at.
        generation: u64,
        /// The persistable signal cache.
        cache: SignalCacheFile,
    },
    /// Answer to [`ServiceRequest::Checkpoint`].
    Checkpointed {
        /// Generation the checkpoint captures.
        generation: u64,
        /// Posts the checkpointed corpus holds.
        posts: usize,
        /// Filesystem path of the published checkpoint directory.
        path: String,
    },
    /// Answer to [`ServiceRequest::Status`].
    Status {
        /// Posts currently served.
        posts: usize,
        /// Current engine generation.
        generation: u64,
        /// Registered database names.
        databases: Vec<String>,
        /// Registered configuration names.
        configs: Vec<String>,
        /// Worker threads in the service pool.
        workers: usize,
        /// Requests accepted but not yet picked up by a worker.
        queued: usize,
        /// Requests currently executing on a worker.
        in_flight: usize,
        /// Requests that panicked (and were caught) since startup.
        panicked: usize,
        /// Live monitor subscriptions.
        subscriptions: usize,
        /// Recurring scheduled jobs.
        scheduled: usize,
        /// Records in the write-ahead journal (0 when not durable).
        wal_records: u64,
        /// Bytes in the write-ahead journal (0 when not durable).
        wal_bytes: u64,
        /// Generation of the newest published checkpoint (`None` when not
        /// durable or never checkpointed).
        last_checkpoint_generation: Option<u64>,
        /// Whether the service restored prior state at startup.
        recovered_at_start: bool,
        /// Socket-transport counters (all zero when no [`net::SocketServer`]
        /// is attached).
        net: NetStatus,
    },
    /// Answer to [`ServiceRequest::Subscribe`].
    Subscribed {
        /// Subscription id (pass to `Unsubscribe`; stamps every delta).
        id: u64,
        /// Generation published when the subscription was registered.
        generation: u64,
    },
    /// Answer to [`ServiceRequest::Unsubscribe`].
    Unsubscribed {
        /// The removed subscription id.
        id: u64,
    },
    /// Answer to [`ServiceRequest::Schedule`].
    Scheduled {
        /// Job id (pass to `Unschedule`; stamps every scheduled run).
        id: u64,
        /// The effective interval in milliseconds.
        every_ms: u64,
    },
    /// Answer to [`ServiceRequest::Unschedule`].
    Unscheduled {
        /// The removed job id.
        id: u64,
    },
    /// The request's deadline passed before it finished: either it sat in
    /// the queue too long, or a cooperative check point between sweep
    /// windows / matrix cells observed the expiry.  No result was produced.
    Expired {
        /// Milliseconds between submission and the expiry being observed.
        waited_ms: u64,
    },
    /// The request failed; no other response was produced.
    Error {
        /// What went wrong.
        error: ServiceError,
    },
}

/// A push event delivered outside the request/response cycle: monitor
/// deltas after ingest publications, and the results of scheduled runs.
/// Events from request-registered subscriptions are drained with
/// [`TaraService::poll_events`]; embedded callers get a dedicated channel
/// via [`TaraService::subscribe`] / [`TaraService::schedule`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceEvent {
    /// A monitor subscription re-evaluated after an ingest publication.
    /// The series is computed on the just-published snapshot, so it is
    /// bit-identical to a cold monitoring run over the corpus at the
    /// stamped generation (pinned in `tests/service.rs`).
    MonitorDelta {
        /// The subscription this delta answers.
        subscription: u64,
        /// The generation the series was computed at.
        generation: u64,
        /// The re-evaluated monitoring series.
        series: MonitoringSeries,
        /// The alert firings of the series at the subscription's threshold.
        alerts: Vec<SaiAlert>,
    },
    /// One run of a scheduled job.
    ScheduledRun {
        /// The job this run answers.
        job: u64,
        /// The result, exactly as the equivalent direct request would
        /// answer (including `Error` responses).
        response: ServiceResponse,
    },
    /// The final event on a subscribed channel when the serving transport
    /// drains (graceful shutdown): no further deltas will arrive.  Pushed by
    /// the socket server to every subscribed connection before it closes.
    Draining {
        /// The generation published when the drain began.
        generation: u64,
    },
}

/// The receiving half of an embedded subscription or scheduled job: a
/// dedicated event channel plus the registration id.
#[derive(Debug)]
pub struct Subscription {
    id: u64,
    generation: u64,
    receiver: mpsc::Receiver<ServiceEvent>,
}

impl Subscription {
    /// The registration id (matches the `subscription` / `job` stamp on
    /// every delivered event; pass to `Unsubscribe` / `Unschedule`).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The generation published when the registration was made — what a
    /// transport echoes in its `Subscribed` response.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// A pending event, if one is queued (never blocks).
    #[must_use]
    pub fn try_recv(&self) -> Option<ServiceEvent> {
        self.receiver.try_recv().ok()
    }

    /// Waits up to `timeout` for the next event; `None` on timeout or when
    /// the service has shut down.
    #[must_use]
    pub fn recv_timeout(&self, timeout: Duration) -> Option<ServiceEvent> {
        self.receiver.recv_timeout(timeout).ok()
    }
}

/// One registered monitor subscription: its spec plus the sending half of
/// its event channel.
#[derive(Debug)]
struct Subscriber {
    id: u64,
    spec: MonitorSpec,
    sender: mpsc::Sender<ServiceEvent>,
}

/// Everything a request needs, shared between the synchronous path, the
/// pool's workers and the scheduler thread.
#[derive(Debug)]
struct ServiceState<E> {
    publisher: SnapshotPublisher<E>,
    registry: ServiceRegistry,
    workers: usize,
    /// Shared with the worker pool so `Status` reports live depths.
    metrics: Arc<PoolMetrics>,
    /// Monitor subscriptions, notified after every successful ingest.
    subscriptions: Mutex<Vec<Subscriber>>,
    /// Event receivers owned by request-path registrations (wire clients
    /// have no process to hand a channel to); drained by
    /// [`TaraService::poll_events`].
    retained: Mutex<Vec<(u64, mpsc::Receiver<ServiceEvent>)>>,
    /// One id space for subscriptions and scheduled jobs.
    next_id: AtomicU64,
    /// The scheduler's timetable (the thread itself lives on the service).
    scheduler: SchedulerQueue,
    /// The durability plane, when the service owns a data directory:
    /// ingests are journaled write-ahead and `Checkpoint` requests persist
    /// atomic snapshots.
    durable: Option<Arc<DurableStore>>,
    /// Socket-transport counters, shared with an attached
    /// [`net::SocketServer`] so `Status` reports them; all zero otherwise.
    net: Arc<NetMetrics>,
}

/// The TARA service: request execution over a snapshot-published engine.
///
/// Generic over the engine shape — anything [`StreamingScorer`] `+ Clone`
/// serves, with [`LiveEngine`] as the default; pass a
/// [`ShardedEngine`](crate::engine::ShardedEngine) to serve from per-shard
/// indexes with bit-identical responses.
///
/// ```
/// use psp::config::PspConfig;
/// use psp::keyword_db::KeywordDatabase;
/// use psp::service::{ServiceRegistry, ServiceRequest, ServiceResponse, TaraService};
/// use psp::engine::LiveEngine;
/// use socialsim::scenario;
///
/// let registry = ServiceRegistry::new()
///     .database("excavator", KeywordDatabase::excavator_seed())
///     .config("excavator", PspConfig::excavator_europe());
/// let service = TaraService::new(LiveEngine::new(scenario::excavator_europe(7)), registry);
/// let response = service.handle(ServiceRequest::Score {
///     db: "excavator".into(),
///     config: "excavator".into(),
/// });
/// match response {
///     ServiceResponse::Score { generation, sai } => {
///         assert_eq!(generation, 0);
///         assert!(!sai.is_empty());
///     }
///     other => panic!("unexpected response: {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct TaraService<E = LiveEngine>
where
    E: StreamingScorer + Clone + Send + Sync + 'static,
{
    state: Arc<ServiceState<E>>,
    pool: WorkerPool,
    /// The `tara-scheduler` thread; signalled and joined on drop.
    scheduler: Option<std::thread::JoinHandle<()>>,
}

impl<E: StreamingScorer + Clone + Send + Sync + 'static> TaraService<E> {
    /// Builds a service over `engine` with one worker per available core.
    #[must_use]
    pub fn new(engine: E, registry: ServiceRegistry) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::with_workers(engine, registry, workers)
    }

    /// Builds a service with an explicit worker-pool size (clamped to at
    /// least one).
    #[must_use]
    pub fn with_workers(engine: E, registry: ServiceRegistry, workers: usize) -> Self {
        Self::build(engine, registry, workers, None)
    }

    /// Builds a durable service: `store` (from [`DurableStore::recover`],
    /// which also reconstructs `engine`) journals every ingest write-ahead
    /// and serves `Checkpoint` requests.  The caller passes the *recovered*
    /// engine — the store and the engine must come from the same `recover`
    /// call, or the journal floor and the served generation disagree.
    #[must_use]
    pub fn with_durability(
        engine: E,
        registry: ServiceRegistry,
        workers: usize,
        store: Arc<DurableStore>,
    ) -> Self {
        Self::build(engine, registry, workers, Some(store))
    }

    fn build(
        engine: E,
        registry: ServiceRegistry,
        workers: usize,
        durable: Option<Arc<DurableStore>>,
    ) -> Self {
        let workers = workers.max(1);
        let metrics = Arc::new(PoolMetrics::default());
        let state = Arc::new(ServiceState {
            publisher: SnapshotPublisher::new(engine),
            registry,
            workers,
            metrics: Arc::clone(&metrics),
            subscriptions: Mutex::new(Vec::new()),
            retained: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            scheduler: SchedulerQueue::default(),
            durable,
            net: Arc::new(NetMetrics::default()),
        });
        let scheduler = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("tara-scheduler".into())
                .spawn(move || scheduler::run(&state.scheduler, |request| state.respond(request)))
                .expect("spawning the scheduler thread failed")
        };
        Self {
            state,
            pool: WorkerPool::with_metrics(workers, metrics),
            scheduler: Some(scheduler),
        }
    }

    /// Number of worker threads serving [`submit`](Self::submit) requests.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.state.workers
    }

    /// The currently published engine generation, for callers that want to
    /// score directly (the scoring entry points all deref from the
    /// snapshot).
    #[must_use]
    pub fn snapshot(&self) -> EngineSnapshot<E> {
        self.state.publisher.snapshot()
    }

    /// Executes a request synchronously on the calling thread.  Never panics
    /// on bad input: failures come back as [`ServiceResponse::Error`].
    #[must_use]
    pub fn handle(&self, request: ServiceRequest) -> ServiceResponse {
        self.state.respond(request)
    }

    /// Executes a request synchronously under a caller-held [`CancelToken`]:
    /// cancellation (or the token's deadline) is observed between sweep
    /// windows and matrix cells and answers [`ServiceResponse::Expired`].
    #[must_use]
    pub fn handle_with_token(
        &self,
        request: ServiceRequest,
        token: &CancelToken,
    ) -> ServiceResponse {
        self.state.respond_with(request, token)
    }

    /// Enqueues a request on the worker pool and returns a [`Ticket`] to
    /// wait on.  Submissions from one thread are answered in submission
    /// order only when the pool has a single worker; correlate by
    /// generation (or by wire id, at the transport layer) otherwise.
    #[must_use]
    pub fn submit(&self, request: ServiceRequest) -> Ticket {
        self.submit_with_token(request, CancelToken::disabled())
    }

    /// Enqueues a request that expires `deadline` after submission: if it is
    /// still queued when the deadline passes — or a cooperative check point
    /// between sweep windows / matrix cells observes the expiry — the ticket
    /// answers [`ServiceResponse::Expired`] instead of a result.  Pair with
    /// [`Ticket::wait_timeout`] to bound the client-side wait too.
    #[must_use]
    pub fn submit_with_deadline(&self, request: ServiceRequest, deadline: Duration) -> Ticket {
        self.submit_with_token(request, CancelToken::with_deadline(deadline))
    }

    /// Enqueues a request carrying an explicit token, so the caller can
    /// [`cancel`](CancelToken::cancel) it while it is queued or running.
    #[must_use]
    pub fn submit_with_token(&self, request: ServiceRequest, token: CancelToken) -> Ticket {
        let (sender, ticket) = Ticket::new();
        let state = Arc::clone(&self.state);
        // An Err means the pool already shut down; the closure (and with it
        // `sender`) is dropped, which resolves the ticket to a
        // `service-stopped` error response.
        let _ = self.pool.execute(move || {
            // A panicking request must still answer its ticket: catch the
            // unwind here (before it reaches the pool's keep-alive backstop,
            // which can only drop the sender) and resolve to a structured
            // `internal-error` response.
            let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                state.respond_with(request, &token)
            }))
            .unwrap_or_else(|payload| {
                state.metrics.record_panic();
                ServiceResponse::Error {
                    error: PspError::Internal {
                        detail: panic_detail(payload.as_ref()),
                    }
                    .into(),
                }
            });
            let _ = sender.send(response);
        });
        ticket
    }

    /// Registers a monitor subscription with a dedicated event channel (the
    /// embedded-caller form of [`ServiceRequest::Subscribe`]): after every
    /// successful ingest publication the returned [`Subscription`] receives
    /// a [`ServiceEvent::MonitorDelta`].
    ///
    /// # Errors
    ///
    /// Returns an error when the spec names an unregistered database or
    /// configuration.
    pub fn subscribe(&self, spec: MonitorSpec) -> Result<Subscription, PspError> {
        let (id, generation, receiver) = self.state.register_monitor(spec)?;
        Ok(Subscription {
            id,
            generation,
            receiver,
        })
    }

    /// Registers a recurring job with a dedicated event channel (the
    /// embedded-caller form of [`ServiceRequest::Schedule`]): `request` is
    /// re-run every `every` against the latest snapshot, each result
    /// arriving as a [`ServiceEvent::ScheduledRun`].
    ///
    /// # Errors
    ///
    /// Returns an error when `request` is not schedulable (only read-only
    /// snapshot consumers are).
    pub fn schedule(
        &self,
        request: ServiceRequest,
        every: Duration,
    ) -> Result<Subscription, PspError> {
        let (id, receiver) = self.state.register_schedule(request, every)?;
        Ok(Subscription {
            id,
            generation: self.state.publisher.snapshot().generation(),
            receiver,
        })
    }

    /// Drains every pending event of request-path registrations (wire
    /// clients' `Subscribe` / `Schedule`, whose channels the service
    /// retains).  Dedicated [`Subscription`] channels are not drained here.
    #[must_use]
    pub fn poll_events(&self) -> Vec<ServiceEvent> {
        let mut retained = self
            .state
            .retained
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut events = Vec::new();
        retained.retain(|(_, receiver)| loop {
            match receiver.try_recv() {
                Ok(event) => events.push(event),
                Err(mpsc::TryRecvError::Empty) => break true,
                // Sender gone: the registration was removed; drop the stub.
                Err(mpsc::TryRecvError::Disconnected) => break false,
            }
        });
        events
    }

    /// Queue-depth and panic counters of the worker pool, observed now.
    #[must_use]
    pub fn pool_stats(&self) -> runtime::PoolStats {
        self.pool.stats()
    }

    /// Durability counters (the `Status` response's WAL/checkpoint fields),
    /// observed now; all-zero when the service runs without a data
    /// directory.
    #[must_use]
    pub fn durability_stats(&self) -> DurabilityStats {
        self.state.durability_stats()
    }

    /// Whether the service owns a data directory (journals ingests, serves
    /// `Checkpoint`) — transports use this to decide whether a drain should
    /// write a final checkpoint.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.state.durable.is_some()
    }

    /// Socket-transport counters (the `Status` response's `net` block),
    /// observed now; all zero when no [`net::SocketServer`] is attached.
    #[must_use]
    pub fn net_stats(&self) -> NetStatus {
        self.state.net.status()
    }
}

impl<E: StreamingScorer + Clone + Send + Sync + 'static> Drop for TaraService<E> {
    fn drop(&mut self) {
        self.state.scheduler.shut_down();
        if let Some(scheduler) = self.scheduler.take() {
            let _ = scheduler.join();
        }
    }
}

impl<E: StreamingScorer + Clone + Send + Sync + 'static> ServiceState<E> {
    fn respond(&self, request: ServiceRequest) -> ServiceResponse {
        self.respond_with(request, &CancelToken::disabled())
    }

    fn respond_with(&self, request: ServiceRequest, token: &CancelToken) -> ServiceResponse {
        // A request whose deadline passed while it sat in the queue is not
        // worth starting at all.
        if token.is_cancelled() {
            return ServiceResponse::Expired {
                waited_ms: token.waited_ms(),
            };
        }
        self.try_respond(request, token)
            .unwrap_or_else(|error| ServiceResponse::Error {
                error: error.into(),
            })
    }

    /// Executes one request against one snapshot.  The snapshot is taken
    /// once, first, and everything — including the stamped generation — is
    /// read from it, so a concurrent ingest can never tear a response.
    ///
    /// A cooperative `token` switches sweeps and matrices to per-window
    /// execution with a cancellation check between units; results stay
    /// bit-identical (each unit is the engine's own single-entry
    /// `sai_windows`, and the sweep/matrix planes are pinned equal to
    /// exactly that decomposition) while an expiry observed mid-run answers
    /// [`ServiceResponse::Expired`] instead of finishing work nobody awaits.
    fn try_respond(
        &self,
        request: ServiceRequest,
        token: &CancelToken,
    ) -> Result<ServiceResponse, PspError> {
        match request {
            ServiceRequest::Score { db, config } => {
                let db = self.registry.lookup_database(&db)?;
                let config = self.registry.lookup_config(&config)?;
                let snapshot = self.publisher.snapshot();
                Ok(ServiceResponse::Score {
                    generation: snapshot.generation(),
                    sai: snapshot.sai_list(db, config),
                })
            }
            ServiceRequest::Sweep {
                db,
                config,
                windows,
            } => {
                let db = self.registry.lookup_database(&db)?;
                let config = self.registry.lookup_config(&config)?;
                let snapshot = self.publisher.snapshot();
                let generation = snapshot.generation();
                let lists = if token.is_cooperative() {
                    let mut lists = Vec::with_capacity(windows.len());
                    for span in windows.as_options() {
                        if token.is_cancelled() {
                            return Ok(ServiceResponse::Expired {
                                waited_ms: token.waited_ms(),
                            });
                        }
                        let axis = WindowAxis::from(vec![*span]);
                        lists.extend(snapshot.sai_windows(db, config, &axis));
                    }
                    lists
                } else {
                    snapshot.sai_windows(db, config, &windows)
                };
                Ok(ServiceResponse::Sweep { generation, lists })
            }
            ServiceRequest::Matrix {
                scenarios,
                configs,
                windows,
            } => {
                if scenarios.is_empty() || configs.is_empty() {
                    return Err(PspError::BadRequest {
                        detail: "matrix requests need at least one scenario and one configuration"
                            .into(),
                    });
                }
                let mut spec = MatrixSpec::new();
                for name in &scenarios {
                    spec =
                        spec.scenario(name.clone(), self.registry.lookup_database(name)?.clone());
                }
                for name in &configs {
                    spec = spec.config(name.clone(), self.registry.lookup_config(name)?.clone());
                }
                spec = spec.window_axis(&windows);
                let snapshot = self.publisher.snapshot();
                let generation = snapshot.generation();
                if token.is_cooperative() {
                    // Cell-at-a-time execution: scenario-major, then
                    // configuration, then window — the exact `CellId` stream
                    // order — with a cancellation check before every cell.
                    // Each cell is one single-entry `sai_windows` call, which
                    // the matrix plane is pinned bit-identical to.
                    let mut cells = Vec::new();
                    for (s, scenario) in scenarios.iter().enumerate() {
                        let db = self.registry.lookup_database(scenario)?;
                        for (c, name) in configs.iter().enumerate() {
                            let config = self.registry.lookup_config(name)?;
                            let spans: Vec<Option<_>> = if windows.is_empty() {
                                vec![config.window]
                            } else {
                                windows.as_options().to_vec()
                            };
                            for (w, span) in spans.into_iter().enumerate() {
                                if token.is_cancelled() {
                                    return Ok(ServiceResponse::Expired {
                                        waited_ms: token.waited_ms(),
                                    });
                                }
                                let axis = WindowAxis::from(vec![span]);
                                let mut lists = snapshot.sai_windows(db, config, &axis);
                                cells.push((
                                    CellId {
                                        scenario: s,
                                        config: c,
                                        window: w,
                                    },
                                    lists.remove(0),
                                ));
                            }
                        }
                    }
                    Ok(ServiceResponse::Matrix { generation, cells })
                } else {
                    Ok(ServiceResponse::Matrix {
                        generation,
                        cells: snapshot.sai_matrix(&spec).into_cells(),
                    })
                }
            }
            ServiceRequest::Ingest { posts } => {
                // On a durable service the batch is journaled (fsync'd)
                // before the publisher swaps the generation: an acked ingest
                // is always on disk, and a failed append publishes nothing.
                let receipt = match &self.durable {
                    Some(store) => self.publisher.ingest_logged(posts, |batch, generation| {
                        store.log_ingest(batch, generation)
                    })?,
                    None => self.publisher.ingest(posts),
                };
                if receipt.appended > 0 {
                    self.notify_subscribers();
                }
                Ok(ServiceResponse::Ingested {
                    appended: receipt.appended,
                    generation: receipt.generation,
                })
            }
            ServiceRequest::Checkpoint => {
                let store = self.durable.as_ref().ok_or(PspError::NotDurable)?;
                let snapshot = self.publisher.snapshot();
                let (generation, posts, path) = store.checkpoint(&*snapshot)?;
                Ok(ServiceResponse::Checkpointed {
                    generation,
                    posts,
                    path: path.display().to_string(),
                })
            }
            ServiceRequest::ExportCache => {
                let snapshot = self.publisher.snapshot();
                Ok(ServiceResponse::Cache {
                    generation: snapshot.generation(),
                    cache: snapshot.export_signal_cache(),
                })
            }
            ServiceRequest::Status => {
                let snapshot = self.publisher.snapshot();
                let stats = self.metrics.stats();
                let durability = self.durability_stats();
                Ok(ServiceResponse::Status {
                    posts: snapshot.post_count(),
                    generation: snapshot.generation(),
                    databases: self.registry.database_names(),
                    configs: self.registry.config_names(),
                    workers: self.workers,
                    queued: stats.queued,
                    in_flight: stats.in_flight,
                    panicked: stats.panicked,
                    subscriptions: self
                        .subscriptions
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .len(),
                    scheduled: self.scheduler.len(),
                    wal_records: durability.wal_records,
                    wal_bytes: durability.wal_bytes,
                    last_checkpoint_generation: durability.last_checkpoint_generation,
                    recovered_at_start: durability.recovered_at_start,
                    net: self.net.status(),
                })
            }
            ServiceRequest::Subscribe { spec } => {
                let (id, generation, receiver) = self.register_monitor(spec)?;
                // Wire clients have no process to hand a channel to: retain
                // the receiver, drained by `TaraService::poll_events`.
                self.retained
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push((id, receiver));
                Ok(ServiceResponse::Subscribed { id, generation })
            }
            ServiceRequest::Unsubscribe { id } => {
                let mut subscriptions = self
                    .subscriptions
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                let before = subscriptions.len();
                subscriptions.retain(|subscriber| subscriber.id != id);
                if subscriptions.len() == before {
                    return Err(PspError::BadRequest {
                        detail: format!("no subscription with id {id}"),
                    });
                }
                // Dropping the sender disconnects any retained receiver;
                // `poll_events` prunes the stub on its next drain.
                Ok(ServiceResponse::Unsubscribed { id })
            }
            ServiceRequest::Schedule { every_ms, request } => {
                let every = Duration::from_millis(every_ms.max(1));
                let (id, receiver) = self.register_schedule(*request, every)?;
                self.retained
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push((id, receiver));
                Ok(ServiceResponse::Scheduled {
                    id,
                    every_ms: every_ms.max(1),
                })
            }
            ServiceRequest::Unschedule { id } => {
                if !self.scheduler.remove(id) {
                    return Err(PspError::BadRequest {
                        detail: format!("no scheduled job with id {id}"),
                    });
                }
                Ok(ServiceResponse::Unscheduled { id })
            }
        }
    }

    /// Validates and registers a monitor subscription; returns its id, the
    /// generation at registration and the receiving half of its channel.
    fn register_monitor(
        &self,
        spec: MonitorSpec,
    ) -> Result<(u64, u64, mpsc::Receiver<ServiceEvent>), PspError> {
        self.registry.lookup_database(&spec.db)?;
        self.registry.lookup_config(&spec.config)?;
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let (sender, receiver) = mpsc::channel();
        self.subscriptions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Subscriber { id, spec, sender });
        Ok((id, self.publisher.snapshot().generation(), receiver))
    }

    /// Validates and registers a recurring job; returns its id and the
    /// receiving half of its event channel.
    fn register_schedule(
        &self,
        request: ServiceRequest,
        every: Duration,
    ) -> Result<(u64, mpsc::Receiver<ServiceEvent>), PspError> {
        if !request.is_schedulable() {
            return Err(PspError::NotSchedulable {
                request: request.kind_name(),
            });
        }
        if matches!(request, ServiceRequest::Checkpoint) && self.durable.is_none() {
            // A scheduled checkpoint on a non-durable service would tick
            // `not-durable` errors forever; reject at registration instead.
            return Err(PspError::NotDurable);
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let (sender, receiver) = mpsc::channel();
        self.scheduler.add(id, request, every, sender);
        Ok((id, receiver))
    }

    /// Durability counters, or the all-zero stats when the service runs
    /// without a data directory.
    fn durability_stats(&self) -> DurabilityStats {
        self.durable.as_ref().map_or(
            DurabilityStats {
                wal_records: 0,
                wal_bytes: 0,
                last_checkpoint_generation: None,
                recovered_at_start: false,
            },
            |store| store.stats(),
        )
    }

    /// Re-evaluates every monitor subscription on the latest snapshot and
    /// pushes one [`ServiceEvent::MonitorDelta`] each; called after every
    /// ingest that appended posts.  Subscribers whose receiver is gone are
    /// pruned.  The snapshot is taken once and shared, so all deltas of one
    /// notification round stamp the same generation.
    fn notify_subscribers(&self) {
        let mut subscriptions = self
            .subscriptions
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if subscriptions.is_empty() {
            return;
        }
        let snapshot = self.publisher.snapshot();
        let generation = snapshot.generation();
        subscriptions.retain(|subscriber| {
            let spec = &subscriber.spec;
            // Registration validated the names and the registry is immutable
            // afterwards, so the lookups cannot fail; stay panic-free anyway.
            let (Ok(db), Ok(config)) = (
                self.registry.lookup_database(&spec.db),
                self.registry.lookup_config(&spec.config),
            ) else {
                return false;
            };
            let series = MonitoringSeries::run_on(
                &*snapshot,
                db,
                config,
                &spec.scenario,
                spec.from_year,
                spec.to_year,
                spec.window_years,
            );
            let alerts = series.sai_alerts(spec.alert_threshold);
            subscriber
                .sender
                .send(ServiceEvent::MonitorDelta {
                    subscription: subscriber.id,
                    generation,
                    series,
                    alerts,
                })
                .is_ok()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialsim::scenario;

    fn registry() -> ServiceRegistry {
        ServiceRegistry::new()
            .database("excavator", KeywordDatabase::excavator_seed())
            .config("excavator", PspConfig::excavator_europe())
    }

    fn service() -> TaraService {
        TaraService::with_workers(
            LiveEngine::new(scenario::excavator_europe(7)),
            registry(),
            2,
        )
    }

    #[test]
    fn score_matches_a_standalone_engine_and_stamps_the_generation() {
        let service = service();
        let reference = LiveEngine::new(scenario::excavator_europe(7)).sai_list(
            &KeywordDatabase::excavator_seed(),
            &PspConfig::excavator_europe(),
        );
        match service.handle(ServiceRequest::Score {
            db: "excavator".into(),
            config: "excavator".into(),
        }) {
            ServiceResponse::Score { generation, sai } => {
                assert_eq!(generation, 0);
                assert_eq!(sai, reference);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn unknown_names_answer_with_typed_errors_not_panics() {
        let service = service();
        match service.handle(ServiceRequest::Score {
            db: "nope".into(),
            config: "excavator".into(),
        }) {
            ServiceResponse::Error { error } => {
                assert_eq!(error.kind, "unknown-database");
                assert!(error.detail.contains("nope"));
            }
            other => panic!("unexpected response: {other:?}"),
        }
        match service.handle(ServiceRequest::Sweep {
            db: "excavator".into(),
            config: "missing".into(),
            windows: WindowAxis::default(),
        }) {
            ServiceResponse::Error { error } => assert_eq!(error.kind, "unknown-config"),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn empty_matrix_requests_are_rejected_as_bad_requests() {
        let service = service();
        match service.handle(ServiceRequest::Matrix {
            scenarios: Vec::new(),
            configs: vec!["excavator".into()],
            windows: WindowAxis::default(),
        }) {
            ServiceResponse::Error { error } => assert_eq!(error.kind, "bad-request"),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn ingest_advances_the_generation_seen_by_later_requests() {
        let service = service();
        let batch = scenario::excavator_europe(8).posts().to_vec();
        let appended = batch.len();
        match service.handle(ServiceRequest::Ingest { posts: batch }) {
            ServiceResponse::Ingested {
                appended: got,
                generation,
            } => {
                assert_eq!(got, appended);
                assert_eq!(generation, 1);
            }
            other => panic!("unexpected response: {other:?}"),
        }
        match service.handle(ServiceRequest::Status) {
            ServiceResponse::Status {
                posts,
                generation,
                databases,
                configs,
                workers,
                queued,
                in_flight,
                panicked,
                subscriptions,
                scheduled,
                wal_records,
                wal_bytes,
                last_checkpoint_generation,
                recovered_at_start,
                net,
            } => {
                assert!(posts > 0);
                assert_eq!(generation, 1);
                assert_eq!(databases, vec!["excavator".to_string()]);
                assert_eq!(configs, vec!["excavator".to_string()]);
                assert_eq!(workers, 2);
                assert_eq!((queued, in_flight, panicked), (0, 0, 0));
                assert_eq!((subscriptions, scheduled), (0, 0));
                // Not durable: the durability fields are all zero.
                assert_eq!((wal_records, wal_bytes), (0, 0));
                assert_eq!(last_checkpoint_generation, None);
                assert!(!recovered_at_start);
                // No socket server attached: every net counter is zero.
                assert_eq!(net, NetStatus::default());
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn submitted_requests_answer_through_tickets() {
        let service = service();
        let tickets: Vec<_> = (0..4)
            .map(|_| service.submit(ServiceRequest::Status))
            .collect();
        for ticket in tickets {
            match ticket.wait() {
                ServiceResponse::Status { generation, .. } => assert_eq!(generation, 0),
                other => panic!("unexpected response: {other:?}"),
            }
        }
    }

    #[test]
    fn registry_re_registration_replaces_the_entry() {
        let registry = ServiceRegistry::new()
            .config("c", PspConfig::excavator_europe())
            .config("c", PspConfig::passenger_car_europe());
        assert_eq!(registry.config_names(), vec!["c".to_string()]);
        assert_eq!(
            registry.lookup_config("c").unwrap(),
            &PspConfig::passenger_car_europe()
        );
    }

    #[test]
    fn requests_and_responses_round_trip_through_json() {
        let request = ServiceRequest::Sweep {
            db: "excavator".into(),
            config: "excavator".into(),
            windows: WindowAxis::new().window(socialsim::time::DateWindow::years(2020, 2022)),
        };
        let json = serde_json::to_string(&request).unwrap();
        assert_eq!(request, serde_json::from_str(&json).unwrap());

        let response = ServiceResponse::Error {
            error: ServiceError {
                kind: "bad-request".into(),
                detail: "because".into(),
            },
        };
        let json = serde_json::to_string(&response).unwrap();
        assert_eq!(response, serde_json::from_str(&json).unwrap());

        // The recursive Schedule variant (boxed request) round-trips too.
        let request = ServiceRequest::Schedule {
            every_ms: 250,
            request: Box::new(ServiceRequest::Status),
        };
        let json = serde_json::to_string(&request).unwrap();
        assert_eq!(request, serde_json::from_str(&json).unwrap());
    }

    fn monitor_spec() -> MonitorSpec {
        MonitorSpec {
            db: "excavator".into(),
            config: "excavator".into(),
            scenario: "dpf-tampering".into(),
            from_year: 2019,
            to_year: 2023,
            window_years: 2,
            alert_threshold: 0.25,
        }
    }

    #[test]
    fn request_path_subscriptions_deliver_deltas_through_poll_events() {
        let service = service();
        let id = match service.handle(ServiceRequest::Subscribe {
            spec: monitor_spec(),
        }) {
            ServiceResponse::Subscribed { id, generation } => {
                assert_eq!(generation, 0);
                id
            }
            other => panic!("unexpected response: {other:?}"),
        };
        assert!(service.poll_events().is_empty(), "no ingest yet");

        let posts = scenario::excavator_europe(9).posts().to_vec();
        let _ = service.handle(ServiceRequest::Ingest { posts });
        let events = service.poll_events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            ServiceEvent::MonitorDelta {
                subscription,
                generation,
                series,
                ..
            } => {
                assert_eq!(*subscription, id);
                assert_eq!(*generation, 1);
                assert_eq!(series.scenario, "dpf-tampering");
            }
            other => panic!("unexpected event: {other:?}"),
        }

        match service.handle(ServiceRequest::Unsubscribe { id }) {
            ServiceResponse::Unsubscribed { id: gone } => assert_eq!(gone, id),
            other => panic!("unexpected response: {other:?}"),
        }
        match service.handle(ServiceRequest::Unsubscribe { id }) {
            ServiceResponse::Error { error } => assert_eq!(error.kind, "bad-request"),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn subscriptions_validate_registry_names() {
        let service = service();
        let mut spec = monitor_spec();
        spec.db = "nope".into();
        match service.handle(ServiceRequest::Subscribe { spec }) {
            ServiceResponse::Error { error } => assert_eq!(error.kind, "unknown-database"),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn mutating_requests_cannot_be_scheduled() {
        let service = service();
        match service.handle(ServiceRequest::Schedule {
            every_ms: 10,
            request: Box::new(ServiceRequest::Ingest { posts: Vec::new() }),
        }) {
            ServiceResponse::Error { error } => {
                assert_eq!(error.kind, "not-schedulable");
                assert!(error.detail.contains("Ingest"));
            }
            other => panic!("unexpected response: {other:?}"),
        }
        assert!(!ServiceRequest::Unsubscribe { id: 1 }.is_schedulable());
        assert!(ServiceRequest::Status.is_schedulable());
        assert!(ServiceRequest::Checkpoint.is_schedulable());

        // Checkpoint is schedulable in principle, but not on a service
        // without a data directory — that would tick errors forever.
        match service.handle(ServiceRequest::Schedule {
            every_ms: 10,
            request: Box::new(ServiceRequest::Checkpoint),
        }) {
            ServiceResponse::Error { error } => assert_eq!(error.kind, "not-durable"),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn checkpoint_on_a_non_durable_service_answers_not_durable() {
        let service = service();
        match service.handle(ServiceRequest::Checkpoint) {
            ServiceResponse::Error { error } => {
                assert_eq!(error.kind, "not-durable");
                assert!(error.detail.contains("data directory"));
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn scheduled_jobs_register_and_unschedule_through_the_request_path() {
        let service = service();
        let id = match service.handle(ServiceRequest::Schedule {
            every_ms: 0, // clamped to 1ms
            request: Box::new(ServiceRequest::Status),
        }) {
            ServiceResponse::Scheduled { id, every_ms } => {
                assert_eq!(every_ms, 1);
                id
            }
            other => panic!("unexpected response: {other:?}"),
        };
        match service.handle(ServiceRequest::Unschedule { id }) {
            ServiceResponse::Unscheduled { id: gone } => assert_eq!(gone, id),
            other => panic!("unexpected response: {other:?}"),
        }
        match service.handle(ServiceRequest::Unschedule { id }) {
            ServiceResponse::Error { error } => assert_eq!(error.kind, "bad-request"),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn deadline_results_match_the_plain_path_bit_for_bit() {
        // The cooperative (per-window) sweep decomposition must not change a
        // single bit of the answer.
        let service = service();
        let request = ServiceRequest::Sweep {
            db: "excavator".into(),
            config: "excavator".into(),
            windows: WindowAxis::new()
                .window(socialsim::time::DateWindow::years(2019, 2021))
                .full_history()
                .window(socialsim::time::DateWindow::years(2022, 2023)),
        };
        let plain = service.handle(request.clone());
        let under_deadline = service
            .submit_with_deadline(request, Duration::from_secs(600))
            .wait();
        assert_eq!(plain, under_deadline);
    }
}
