//! The TARA service daemon core: a protocol-agnostic request/response layer
//! over the scoring engines.
//!
//! The monitoring examples all hand-roll the same loop — ingest a batch,
//! re-score, repeat — with the engine's `&mut self` forcing every consumer to
//! serialize behind one borrow.  This module turns that inside out:
//!
//! * [`ServiceRequest`] / [`ServiceResponse`] are plain serializable enums —
//!   the whole service surface, independent of any transport.  The stdin
//!   line-JSON daemon (`examples/tara_daemon.rs`) is ~a page of glue over
//!   [`wire`]; an embedded caller skips the wire format entirely and calls
//!   [`TaraService::handle`] with the same types.
//! * [`TaraService`] executes requests against an engine published through a
//!   [`SnapshotPublisher`]: each request scores
//!   one immutable generation end to end, while ingest builds the next
//!   generation off to the side.  Readers never block on writers and every
//!   response stamps the generation it was computed at.
//! * [`TaraService::submit`] runs a request on the built-in
//!   [`WorkerPool`] (plain threads + channels — no async
//!   executor in the offline dependency closure) and hands back a
//!   [`Ticket`] to wait on; [`TaraService::handle`] is the
//!   synchronous spelling of the same computation.
//!
//! Scenario databases and scoring configurations are looked up by name in a
//! [`ServiceRegistry`], so requests carry short names instead of inlined
//! configuration blobs.  All failures fold into
//! [`PspError`] and travel as
//! [`ServiceResponse::Error`] — the service never panics on bad input.

pub mod runtime;
pub mod snapshot;
pub mod wire;

use crate::config::PspConfig;
use crate::engine::{CellId, LiveEngine, MatrixSpec, SignalCacheFile, StreamingScorer, WindowAxis};
use crate::error::PspError;
use crate::keyword_db::KeywordDatabase;
use crate::sai::SaiList;
use runtime::{Ticket, WorkerPool};
use serde::{Deserialize, Serialize};
use snapshot::{EngineSnapshot, SnapshotPublisher};
use socialsim::post::Post;
use std::sync::Arc;

/// Named keyword databases and scoring configurations the service can be
/// asked for.  Requests reference entries by name; unknown names answer with
/// `unknown-database` / `unknown-config` errors listing nothing sensitive.
#[derive(Debug, Clone, Default)]
pub struct ServiceRegistry {
    databases: Vec<(String, KeywordDatabase)>,
    configs: Vec<(String, PspConfig)>,
}

impl ServiceRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a keyword database under `name` (last registration wins on
    /// duplicate names).
    #[must_use]
    pub fn database(mut self, name: impl Into<String>, db: KeywordDatabase) -> Self {
        let name = name.into();
        self.databases.retain(|(existing, _)| *existing != name);
        self.databases.push((name, db));
        self
    }

    /// Registers a scoring configuration under `name` (last registration wins
    /// on duplicate names).
    #[must_use]
    pub fn config(mut self, name: impl Into<String>, config: PspConfig) -> Self {
        let name = name.into();
        self.configs.retain(|(existing, _)| *existing != name);
        self.configs.push((name, config));
        self
    }

    /// Looks a database up by name.
    ///
    /// # Errors
    ///
    /// [`PspError::UnknownDatabase`] when the name is not registered.
    pub fn lookup_database(&self, name: &str) -> Result<&KeywordDatabase, PspError> {
        self.databases
            .iter()
            .find(|(registered, _)| registered == name)
            .map(|(_, db)| db)
            .ok_or_else(|| PspError::UnknownDatabase { name: name.into() })
    }

    /// Looks a configuration up by name.
    ///
    /// # Errors
    ///
    /// [`PspError::UnknownConfig`] when the name is not registered.
    pub fn lookup_config(&self, name: &str) -> Result<&PspConfig, PspError> {
        self.configs
            .iter()
            .find(|(registered, _)| registered == name)
            .map(|(_, config)| config)
            .ok_or_else(|| PspError::UnknownConfig { name: name.into() })
    }

    /// The registered database names, in registration order.
    #[must_use]
    pub fn database_names(&self) -> Vec<String> {
        self.databases
            .iter()
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// The registered configuration names, in registration order.
    #[must_use]
    pub fn config_names(&self) -> Vec<String> {
        self.configs.iter().map(|(name, _)| name.clone()).collect()
    }
}

/// The wire form of a failed request: a stable machine-matchable `kind` (see
/// [`PspError::kind`]) plus human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceError {
    /// Stable kebab-case discriminant, e.g. `unknown-database`.
    pub kind: String,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl From<PspError> for ServiceError {
    fn from(error: PspError) -> Self {
        Self {
            kind: error.kind().to_string(),
            detail: error.to_string(),
        }
    }
}

/// A request to the TARA service.  Databases and configurations are referred
/// to by their [`ServiceRegistry`] names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceRequest {
    /// Score one (database, configuration) pair: the full SAI list at the
    /// current generation.
    Score {
        /// Registered database name.
        db: String,
        /// Registered configuration name.
        config: String,
    },
    /// Score one pair across a window axis (monitoring sweep): one SAI list
    /// per axis entry.
    Sweep {
        /// Registered database name.
        db: String,
        /// Registered configuration name.
        config: String,
        /// The windows to resolve, in order.
        windows: WindowAxis,
    },
    /// Resolve a (scenario × configuration × window) cross-product.
    Matrix {
        /// Registered database names, one per matrix scenario row.
        scenarios: Vec<String>,
        /// Registered configuration names, one per matrix configuration
        /// column.
        configs: Vec<String>,
        /// The window grid; empty means each configuration's own window.
        windows: WindowAxis,
    },
    /// Append a batch of posts, publishing the next engine generation.
    Ingest {
        /// The posts to append.
        posts: Vec<Post>,
    },
    /// Export the memoised per-post signal cache at the current generation.
    ExportCache,
    /// Service liveness, corpus size and registry listing.
    Status,
}

/// A response from the TARA service.  Every scoring response stamps the
/// engine generation it was computed at, so callers can correlate results
/// with ingests even when requests run concurrently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceResponse {
    /// Answer to [`ServiceRequest::Score`].
    Score {
        /// Generation the list was computed at.
        generation: u64,
        /// The scored SAI list.
        sai: SaiList,
    },
    /// Answer to [`ServiceRequest::Sweep`]: one list per axis entry, in axis
    /// order.
    Sweep {
        /// Generation the lists were computed at.
        generation: u64,
        /// One SAI list per window.
        lists: Vec<SaiList>,
    },
    /// Answer to [`ServiceRequest::Matrix`]: cells in deterministic
    /// [`CellId`] order (scenario-major, then configuration, then window).
    Matrix {
        /// Generation the cells were computed at.
        generation: u64,
        /// The resolved cells.
        cells: Vec<(CellId, SaiList)>,
    },
    /// Answer to [`ServiceRequest::Ingest`].
    Ingested {
        /// Number of posts appended.
        appended: usize,
        /// Generation the batch is published under.
        generation: u64,
    },
    /// Answer to [`ServiceRequest::ExportCache`].
    Cache {
        /// Generation the cache was exported at.
        generation: u64,
        /// The persistable signal cache.
        cache: SignalCacheFile,
    },
    /// Answer to [`ServiceRequest::Status`].
    Status {
        /// Posts currently served.
        posts: usize,
        /// Current engine generation.
        generation: u64,
        /// Registered database names.
        databases: Vec<String>,
        /// Registered configuration names.
        configs: Vec<String>,
        /// Worker threads in the service pool.
        workers: usize,
    },
    /// The request failed; no other response was produced.
    Error {
        /// What went wrong.
        error: ServiceError,
    },
}

/// Everything a request needs, shared between the synchronous path and the
/// pool's workers.
#[derive(Debug)]
struct ServiceState<E> {
    publisher: SnapshotPublisher<E>,
    registry: ServiceRegistry,
    workers: usize,
}

/// The TARA service: request execution over a snapshot-published engine.
///
/// Generic over the engine shape — anything [`StreamingScorer`] `+ Clone`
/// serves, with [`LiveEngine`] as the default; pass a
/// [`ShardedEngine`](crate::engine::ShardedEngine) to serve from per-shard
/// indexes with bit-identical responses.
///
/// ```
/// use psp::config::PspConfig;
/// use psp::keyword_db::KeywordDatabase;
/// use psp::service::{ServiceRegistry, ServiceRequest, ServiceResponse, TaraService};
/// use psp::engine::LiveEngine;
/// use socialsim::scenario;
///
/// let registry = ServiceRegistry::new()
///     .database("excavator", KeywordDatabase::excavator_seed())
///     .config("excavator", PspConfig::excavator_europe());
/// let service = TaraService::new(LiveEngine::new(scenario::excavator_europe(7)), registry);
/// let response = service.handle(ServiceRequest::Score {
///     db: "excavator".into(),
///     config: "excavator".into(),
/// });
/// match response {
///     ServiceResponse::Score { generation, sai } => {
///         assert_eq!(generation, 0);
///         assert!(!sai.is_empty());
///     }
///     other => panic!("unexpected response: {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct TaraService<E = LiveEngine>
where
    E: StreamingScorer + Clone + Send + Sync + 'static,
{
    state: Arc<ServiceState<E>>,
    pool: WorkerPool,
}

impl<E: StreamingScorer + Clone + Send + Sync + 'static> TaraService<E> {
    /// Builds a service over `engine` with one worker per available core.
    #[must_use]
    pub fn new(engine: E, registry: ServiceRegistry) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::with_workers(engine, registry, workers)
    }

    /// Builds a service with an explicit worker-pool size (clamped to at
    /// least one).
    #[must_use]
    pub fn with_workers(engine: E, registry: ServiceRegistry, workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            state: Arc::new(ServiceState {
                publisher: SnapshotPublisher::new(engine),
                registry,
                workers,
            }),
            pool: WorkerPool::new(workers),
        }
    }

    /// Number of worker threads serving [`submit`](Self::submit) requests.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.state.workers
    }

    /// The currently published engine generation, for callers that want to
    /// score directly (the scoring entry points all deref from the
    /// snapshot).
    #[must_use]
    pub fn snapshot(&self) -> EngineSnapshot<E> {
        self.state.publisher.snapshot()
    }

    /// Executes a request synchronously on the calling thread.  Never panics
    /// on bad input: failures come back as [`ServiceResponse::Error`].
    #[must_use]
    pub fn handle(&self, request: ServiceRequest) -> ServiceResponse {
        self.state.respond(request)
    }

    /// Enqueues a request on the worker pool and returns a [`Ticket`] to
    /// wait on.  Submissions from one thread are answered in submission
    /// order only when the pool has a single worker; correlate by
    /// generation (or by wire id, at the transport layer) otherwise.
    #[must_use]
    pub fn submit(&self, request: ServiceRequest) -> Ticket {
        let (sender, ticket) = Ticket::new();
        let state = Arc::clone(&self.state);
        // An Err means the pool already shut down; the closure (and with it
        // `sender`) is dropped, which resolves the ticket to a
        // `service-stopped` error response.
        let _ = self.pool.execute(move || {
            let _ = sender.send(state.respond(request));
        });
        ticket
    }
}

impl<E: StreamingScorer + Clone + Send + Sync + 'static> ServiceState<E> {
    fn respond(&self, request: ServiceRequest) -> ServiceResponse {
        self.try_respond(request)
            .unwrap_or_else(|error| ServiceResponse::Error {
                error: error.into(),
            })
    }

    /// Executes one request against one snapshot.  The snapshot is taken
    /// once, first, and everything — including the stamped generation — is
    /// read from it, so a concurrent ingest can never tear a response.
    fn try_respond(&self, request: ServiceRequest) -> Result<ServiceResponse, PspError> {
        match request {
            ServiceRequest::Score { db, config } => {
                let db = self.registry.lookup_database(&db)?;
                let config = self.registry.lookup_config(&config)?;
                let snapshot = self.publisher.snapshot();
                Ok(ServiceResponse::Score {
                    generation: snapshot.generation(),
                    sai: snapshot.sai_list(db, config),
                })
            }
            ServiceRequest::Sweep {
                db,
                config,
                windows,
            } => {
                let db = self.registry.lookup_database(&db)?;
                let config = self.registry.lookup_config(&config)?;
                let snapshot = self.publisher.snapshot();
                Ok(ServiceResponse::Sweep {
                    generation: snapshot.generation(),
                    lists: snapshot.sai_windows(db, config, &windows),
                })
            }
            ServiceRequest::Matrix {
                scenarios,
                configs,
                windows,
            } => {
                if scenarios.is_empty() || configs.is_empty() {
                    return Err(PspError::BadRequest {
                        detail: "matrix requests need at least one scenario and one configuration"
                            .into(),
                    });
                }
                let mut spec = MatrixSpec::new();
                for name in &scenarios {
                    spec =
                        spec.scenario(name.clone(), self.registry.lookup_database(name)?.clone());
                }
                for name in &configs {
                    spec = spec.config(name.clone(), self.registry.lookup_config(name)?.clone());
                }
                spec = spec.window_axis(&windows);
                let snapshot = self.publisher.snapshot();
                Ok(ServiceResponse::Matrix {
                    generation: snapshot.generation(),
                    cells: snapshot.sai_matrix(&spec).into_cells(),
                })
            }
            ServiceRequest::Ingest { posts } => {
                let receipt = self.publisher.ingest(posts);
                Ok(ServiceResponse::Ingested {
                    appended: receipt.appended,
                    generation: receipt.generation,
                })
            }
            ServiceRequest::ExportCache => {
                let snapshot = self.publisher.snapshot();
                Ok(ServiceResponse::Cache {
                    generation: snapshot.generation(),
                    cache: snapshot.export_signal_cache(),
                })
            }
            ServiceRequest::Status => {
                let snapshot = self.publisher.snapshot();
                Ok(ServiceResponse::Status {
                    posts: snapshot.post_count(),
                    generation: snapshot.generation(),
                    databases: self.registry.database_names(),
                    configs: self.registry.config_names(),
                    workers: self.workers,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialsim::scenario;

    fn registry() -> ServiceRegistry {
        ServiceRegistry::new()
            .database("excavator", KeywordDatabase::excavator_seed())
            .config("excavator", PspConfig::excavator_europe())
    }

    fn service() -> TaraService {
        TaraService::with_workers(
            LiveEngine::new(scenario::excavator_europe(7)),
            registry(),
            2,
        )
    }

    #[test]
    fn score_matches_a_standalone_engine_and_stamps_the_generation() {
        let service = service();
        let reference = LiveEngine::new(scenario::excavator_europe(7)).sai_list(
            &KeywordDatabase::excavator_seed(),
            &PspConfig::excavator_europe(),
        );
        match service.handle(ServiceRequest::Score {
            db: "excavator".into(),
            config: "excavator".into(),
        }) {
            ServiceResponse::Score { generation, sai } => {
                assert_eq!(generation, 0);
                assert_eq!(sai, reference);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn unknown_names_answer_with_typed_errors_not_panics() {
        let service = service();
        match service.handle(ServiceRequest::Score {
            db: "nope".into(),
            config: "excavator".into(),
        }) {
            ServiceResponse::Error { error } => {
                assert_eq!(error.kind, "unknown-database");
                assert!(error.detail.contains("nope"));
            }
            other => panic!("unexpected response: {other:?}"),
        }
        match service.handle(ServiceRequest::Sweep {
            db: "excavator".into(),
            config: "missing".into(),
            windows: WindowAxis::default(),
        }) {
            ServiceResponse::Error { error } => assert_eq!(error.kind, "unknown-config"),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn empty_matrix_requests_are_rejected_as_bad_requests() {
        let service = service();
        match service.handle(ServiceRequest::Matrix {
            scenarios: Vec::new(),
            configs: vec!["excavator".into()],
            windows: WindowAxis::default(),
        }) {
            ServiceResponse::Error { error } => assert_eq!(error.kind, "bad-request"),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn ingest_advances_the_generation_seen_by_later_requests() {
        let service = service();
        let batch = scenario::excavator_europe(8).posts().to_vec();
        let appended = batch.len();
        match service.handle(ServiceRequest::Ingest { posts: batch }) {
            ServiceResponse::Ingested {
                appended: got,
                generation,
            } => {
                assert_eq!(got, appended);
                assert_eq!(generation, 1);
            }
            other => panic!("unexpected response: {other:?}"),
        }
        match service.handle(ServiceRequest::Status) {
            ServiceResponse::Status {
                posts,
                generation,
                databases,
                configs,
                workers,
            } => {
                assert!(posts > 0);
                assert_eq!(generation, 1);
                assert_eq!(databases, vec!["excavator".to_string()]);
                assert_eq!(configs, vec!["excavator".to_string()]);
                assert_eq!(workers, 2);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn submitted_requests_answer_through_tickets() {
        let service = service();
        let tickets: Vec<_> = (0..4)
            .map(|_| service.submit(ServiceRequest::Status))
            .collect();
        for ticket in tickets {
            match ticket.wait() {
                ServiceResponse::Status { generation, .. } => assert_eq!(generation, 0),
                other => panic!("unexpected response: {other:?}"),
            }
        }
    }

    #[test]
    fn registry_re_registration_replaces_the_entry() {
        let registry = ServiceRegistry::new()
            .config("c", PspConfig::excavator_europe())
            .config("c", PspConfig::passenger_car_europe());
        assert_eq!(registry.config_names(), vec!["c".to_string()]);
        assert_eq!(
            registry.lookup_config("c").unwrap(),
            &PspConfig::passenger_car_europe()
        );
    }

    #[test]
    fn requests_and_responses_round_trip_through_json() {
        let request = ServiceRequest::Sweep {
            db: "excavator".into(),
            config: "excavator".into(),
            windows: WindowAxis::new().window(socialsim::time::DateWindow::years(2020, 2022)),
        };
        let json = serde_json::to_string(&request).unwrap();
        assert_eq!(request, serde_json::from_str(&json).unwrap());

        let response = ServiceResponse::Error {
            error: ServiceError {
                kind: "bad-request".into(),
                detail: "because".into(),
            },
        };
        let json = serde_json::to_string(&response).unwrap();
        assert_eq!(response, serde_json::from_str(&json).unwrap());
    }
}
