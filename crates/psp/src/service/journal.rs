//! The write-ahead ingest journal: a length-prefixed, checksummed append-only
//! log of every ingested batch, fsync'd **before** the batch is published.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! file   := HEADER frame*
//! HEADER := b"PSPWAL01"                      (8 bytes, layout version in the magic)
//! frame  := len:u32  crc:u32  payload[len]   (crc = CRC-32/IEEE of payload)
//! payload:= JSON of WalRecord { generation, posts }
//! ```
//!
//! The format is deliberately *recoverable by construction*: a crash can only
//! ever damage the **tail** of the file (appends are sequential and fsync'd in
//! order), so [`scan_wal`] reads frames front to back and stops at the first
//! one that fails any check — short header, short frame, CRC mismatch,
//! implausible length, trailing garbage.  Everything before that point is the
//! valid prefix; everything after is a torn write and is physically truncated
//! away when the writer reopens the file ([`WalWriter::open`]).  No record is
//! ever half-applied: a frame either checksums as a whole or is discarded as
//! a whole.
//!
//! [`FaultFs`] is the fail-point layer the durability tests drive: it can
//! tear an append mid-frame (the on-disk effect of powering off mid-write),
//! fail an fsync, or suppress a rename, each after a configurable countdown.
//! Production code paths run with [`FaultFs::none`], which compiles down to a
//! few relaxed atomic loads.

use crate::error::PspError;
use serde::{Deserialize, Serialize};
use socialsim::post::Post;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The journal file magic; doubles as the layout version (bump the trailing
/// digits on any format change so old readers reject new files wholesale).
pub const WAL_MAGIC: &[u8; 8] = b"PSPWAL01";

/// Frames longer than this are treated as corruption, not data: the length
/// prefix of a torn frame can decode to garbage, and trusting it would make
/// recovery allocate gigabytes before the CRC check ever runs.
pub const MAX_FRAME_BYTES: u32 = 1 << 30;

/// One journaled ingest batch: the posts plus the generation their
/// publication stamps.  Replay applies records whose generation lies beyond
/// the checkpoint floor, in file order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// The engine generation this batch publishes (checkpoint floor filter).
    pub generation: u64,
    /// The ingested posts, in ingest order.
    pub posts: Vec<Post>,
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over `bytes` — the checksum
/// guarding every WAL frame and checkpoint manifest entry.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    // One lazily built 256-entry table; the polynomial is reflected 0x04C11DB7.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0_u32; 256];
        for (n, entry) in table.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    let mut c = 0xFFFF_FFFF_u32;
    for byte in bytes {
        c = table[((c ^ u32::from(*byte)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// What a front-to-back scan of a WAL file found: the valid record prefix and
/// where it ends.
#[derive(Debug)]
pub struct WalScan {
    /// The records of the valid prefix, in file order.
    pub records: Vec<WalRecord>,
    /// File offset one past the last valid frame (truncation point).
    pub valid_bytes: u64,
    /// Total bytes in the file as scanned.
    pub file_bytes: u64,
    /// Why the scan stopped before end of file, when it did.
    pub torn: Option<String>,
}

impl WalScan {
    /// Whether the file carried damage past the valid prefix.
    #[must_use]
    pub fn truncated_bytes(&self) -> u64 {
        self.file_bytes - self.valid_bytes
    }
}

/// Reads the valid prefix of the WAL at `path`.  A missing file scans as
/// empty; a file whose header does not match [`WAL_MAGIC`] scans as fully
/// torn (valid prefix of zero records) — nothing in it can be trusted.
///
/// # Errors
///
/// [`PspError::Durability`] only on I/O failures reading an existing file;
/// corruption is never an error, it is a shorter valid prefix.
pub fn scan_wal(path: &Path) -> Result<WalScan, PspError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                records: Vec::new(),
                valid_bytes: 0,
                file_bytes: 0,
                torn: None,
            })
        }
        Err(err) => {
            return Err(PspError::Durability {
                detail: format!("read WAL {}: {err}", path.display()),
            })
        }
    };
    let file_bytes = bytes.len() as u64;
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Ok(WalScan {
            records: Vec::new(),
            valid_bytes: 0,
            file_bytes,
            torn: Some("missing or foreign WAL header".into()),
        });
    }
    let mut records = Vec::new();
    let mut at = WAL_MAGIC.len();
    let mut torn = None;
    while at < bytes.len() {
        let Some(frame) = bytes.get(at..at + 8) else {
            torn = Some(format!("short frame header at offset {at}"));
            break;
        };
        let len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        if len > MAX_FRAME_BYTES {
            torn = Some(format!("implausible frame length {len} at offset {at}"));
            break;
        }
        let Some(payload) = bytes.get(at + 8..at + 8 + len as usize) else {
            torn = Some(format!("short frame payload at offset {at}"));
            break;
        };
        if crc32(payload) != crc {
            torn = Some(format!("CRC mismatch at offset {at}"));
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            torn = Some(format!("non-UTF-8 payload at offset {at}"));
            break;
        };
        match serde_json::from_str::<WalRecord>(text) {
            Ok(record) => records.push(record),
            Err(err) => {
                // The checksum passed but the payload does not decode: a
                // foreign or future record shape.  Trusting anything after
                // it would re-order history, so the prefix ends here.
                torn = Some(format!("undecodable record at offset {at}: {err:?}"));
                break;
            }
        }
        at += 8 + len as usize;
    }
    Ok(WalScan {
        records,
        valid_bytes: at as u64,
        file_bytes,
        torn,
    })
}

/// Injectable filesystem faults for durability tests: tear an append
/// mid-frame, fail an fsync, suppress a rename.  Cloning shares the fault
/// state, so a test can keep a handle while the store owns another.
///
/// Each fault is armed as a countdown: `after` = 0 triggers on the next
/// matching operation, 1 on the one after that, and so on.  A triggered
/// fault disarms itself.
#[derive(Debug, Clone, Default)]
pub struct FaultFs {
    inner: Arc<FaultState>,
}

#[derive(Debug)]
struct FaultState {
    /// Appends left before one is torn (-1 = disarmed).
    tear_in: AtomicI64,
    /// How many frame bytes the torn append leaves on disk.
    tear_keep: AtomicUsize,
    /// Syncs left before one fails (-1 = disarmed).
    sync_fail_in: AtomicI64,
    /// Renames left before one is suppressed (-1 = disarmed).
    rename_fail_in: AtomicI64,
}

impl Default for FaultState {
    fn default() -> Self {
        Self {
            tear_in: AtomicI64::new(-1),
            tear_keep: AtomicUsize::new(0),
            sync_fail_in: AtomicI64::new(-1),
            rename_fail_in: AtomicI64::new(-1),
        }
    }
}

/// Decrements an armed countdown; returns whether it hit zero (trigger).
fn countdown(counter: &AtomicI64) -> bool {
    // Not a race in practice: faults are armed by a test thread before the
    // operation under test runs; production runs never arm them at all.
    let value = counter.load(Ordering::SeqCst);
    if value < 0 {
        return false;
    }
    counter.store(value - 1, Ordering::SeqCst);
    value == 0
}

impl FaultFs {
    /// A fault layer with nothing armed — the production configuration.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Arms a torn append: after `after` successful appends, the next one
    /// writes only the first `keep_bytes` bytes of its frame and fails — the
    /// on-disk state a power cut mid-write leaves behind.
    pub fn tear_append(&self, after: u64, keep_bytes: usize) {
        self.inner.tear_keep.store(keep_bytes, Ordering::SeqCst);
        self.inner.tear_in.store(after as i64, Ordering::SeqCst);
    }

    /// Arms an fsync failure after `after` successful syncs.
    pub fn fail_sync(&self, after: u64) {
        self.inner
            .sync_fail_in
            .store(after as i64, Ordering::SeqCst);
    }

    /// Arms a rename suppression after `after` successful renames: the
    /// rename does not happen and the caller sees an error — the state a
    /// crash immediately before the rename leaves behind.
    pub fn fail_rename(&self, after: u64) {
        self.inner
            .rename_fail_in
            .store(after as i64, Ordering::SeqCst);
    }

    /// Writes one WAL frame through the tear fault point.
    fn write_frame(&self, file: &mut File, frame: &[u8]) -> Result<(), PspError> {
        if countdown(&self.inner.tear_in) {
            let keep = self.inner.tear_keep.load(Ordering::SeqCst).min(frame.len());
            file.write_all(&frame[..keep])
                .map_err(|err| PspError::Durability {
                    detail: format!("torn WAL append (injected) failed to write: {err}"),
                })?;
            let _ = file.sync_data();
            return Err(PspError::Durability {
                detail: format!(
                    "injected torn append: {keep} of {} bytes reached disk",
                    frame.len()
                ),
            });
        }
        file.write_all(frame).map_err(|err| PspError::Durability {
            detail: format!("append WAL frame: {err}"),
        })
    }

    /// Fsyncs `file` through the sync fault point.
    pub(crate) fn sync(&self, file: &File, what: &str) -> Result<(), PspError> {
        if countdown(&self.inner.sync_fail_in) {
            return Err(PspError::Durability {
                detail: format!("injected fsync failure on {what}"),
            });
        }
        file.sync_data().map_err(|err| PspError::Durability {
            detail: format!("fsync {what}: {err}"),
        })
    }

    /// Renames `from` to `to` through the rename fault point.
    pub(crate) fn rename(&self, from: &Path, to: &Path) -> Result<(), PspError> {
        if countdown(&self.inner.rename_fail_in) {
            return Err(PspError::Durability {
                detail: format!(
                    "injected rename failure: {} never became {}",
                    from.display(),
                    to.display()
                ),
            });
        }
        std::fs::rename(from, to).map_err(|err| PspError::Durability {
            detail: format!("rename {} -> {}: {err}", from.display(), to.display()),
        })
    }
}

/// The appending half of the journal.  One writer exists per
/// [`DurableStore`](super::durability::DurableStore), serialized by the
/// store's WAL mutex; every append is fsync'd before it returns `Ok`.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: File,
    faults: FaultFs,
    records: u64,
    bytes: u64,
    /// Set when a failed append could not be rolled back: the file may end
    /// mid-frame, so further appends would strand every later record behind
    /// a CRC break.  A poisoned writer refuses to append.
    poisoned: bool,
}

impl WalWriter {
    /// Opens (or creates) the WAL at `path` for appending, first truncating
    /// any torn tail `scan` found — the only mutation recovery ever performs
    /// on the journal.
    ///
    /// # Errors
    ///
    /// [`PspError::Durability`] on any filesystem failure.
    pub fn open(path: &Path, scan: &WalScan, faults: FaultFs) -> Result<Self, PspError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|err| PspError::Durability {
                detail: format!("open WAL {}: {err}", path.display()),
            })?;
        let io = |err: std::io::Error, what: &str| PspError::Durability {
            detail: format!("{what} {}: {err}", path.display()),
        };
        if scan.valid_bytes == 0 {
            // Fresh file, or a header so damaged nothing was salvageable:
            // start the journal over.
            file.set_len(0).map_err(|err| io(err, "truncate WAL"))?;
            file.seek(SeekFrom::Start(0))
                .map_err(|err| io(err, "seek WAL"))?;
            file.write_all(WAL_MAGIC)
                .map_err(|err| io(err, "write WAL header"))?;
            faults.sync(&file, "WAL header")?;
        } else if scan.valid_bytes < scan.file_bytes {
            // Torn tail: drop it so the next append starts on a frame
            // boundary instead of extending garbage.
            file.set_len(scan.valid_bytes)
                .map_err(|err| io(err, "truncate torn WAL tail of"))?;
            faults.sync(&file, "truncated WAL")?;
        }
        let end = file
            .seek(SeekFrom::End(0))
            .map_err(|err| io(err, "seek WAL"))?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            faults,
            records: scan.records.len() as u64,
            bytes: end,
            poisoned: false,
        })
    }

    /// Appends one record and fsyncs.  On `Ok`, the record is durable; on
    /// `Err`, the caller must treat the batch as not ingested, and the
    /// partial frame is rolled back so a *surviving* writer keeps appending
    /// on a frame boundary — without the rollback, the next successful
    /// append would land after garbage and be unreachable on replay.  (A
    /// crash mid-append leaves the torn frame instead; the next open
    /// truncates it.)
    ///
    /// # Errors
    ///
    /// [`PspError::Durability`] when serialisation, the write or the fsync
    /// fails (including injected faults), or when an earlier failed append
    /// could not be rolled back (poisoned writer).
    pub fn append(&mut self, record: &WalRecord) -> Result<(), PspError> {
        if self.poisoned {
            return Err(PspError::Durability {
                detail: format!(
                    "WAL {} is poisoned: an earlier failed append could not be rolled back",
                    self.path.display()
                ),
            });
        }
        let payload = serde_json::to_string(record).map_err(|err| PspError::Durability {
            detail: format!("serialise WAL record: {err:?}"),
        })?;
        let payload = payload.as_bytes();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let outcome = self
            .faults
            .clone()
            .write_frame(&mut self.file, &frame)
            .and_then(|()| self.faults.sync(&self.file, "WAL append"));
        if let Err(error) = outcome {
            self.rollback_partial_append();
            return Err(error);
        }
        self.records += 1;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Truncates back to the last durable record after a failed append and
    /// re-seats the cursor there.  Best-effort: if the truncation itself
    /// fails the writer poisons itself rather than append after a partial
    /// frame.
    fn rollback_partial_append(&mut self) {
        let rolled_back = self.file.set_len(self.bytes).is_ok()
            && self.file.seek(SeekFrom::Start(self.bytes)).is_ok();
        if rolled_back {
            let _ = self.file.sync_data();
        } else {
            self.poisoned = true;
        }
    }

    /// Rewrites the journal keeping only records with `generation >
    /// checkpoint_generation` — called after a checkpoint makes the prefix
    /// redundant.  Atomic: the surviving records are written to a sibling
    /// temp file, fsync'd, and renamed over the journal; on any failure the
    /// original journal is untouched and stays in use.
    ///
    /// # Errors
    ///
    /// [`PspError::Durability`] on filesystem failures (including injected
    /// faults); the writer keeps appending to the uncompacted journal.
    pub fn compact(&mut self, checkpoint_generation: u64) -> Result<(), PspError> {
        let scan = scan_wal(&self.path)?;
        let survivors: Vec<&WalRecord> = scan
            .records
            .iter()
            .filter(|record| record.generation > checkpoint_generation)
            .collect();
        let tmp = self.path.with_extension("log.tmp");
        let write_tmp = || -> Result<(u64, u64), PspError> {
            let mut file = File::create(&tmp).map_err(|err| PspError::Durability {
                detail: format!("create {}: {err}", tmp.display()),
            })?;
            let mut bytes = WAL_MAGIC.len() as u64;
            file.write_all(WAL_MAGIC)
                .map_err(|err| PspError::Durability {
                    detail: format!("write {}: {err}", tmp.display()),
                })?;
            for record in &survivors {
                let payload =
                    serde_json::to_string(*record).map_err(|err| PspError::Durability {
                        detail: format!("serialise WAL record: {err:?}"),
                    })?;
                let payload = payload.as_bytes();
                let mut frame = Vec::with_capacity(8 + payload.len());
                frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                frame.extend_from_slice(&crc32(payload).to_le_bytes());
                frame.extend_from_slice(payload);
                file.write_all(&frame).map_err(|err| PspError::Durability {
                    detail: format!("write {}: {err}", tmp.display()),
                })?;
                bytes += frame.len() as u64;
            }
            self.faults.sync(&file, "compacted WAL")?;
            Ok((survivors.len() as u64, bytes))
        };
        let (records, bytes) = match write_tmp() {
            Ok(counts) => counts,
            Err(err) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(err);
            }
        };
        if let Err(err) = self.faults.rename(&tmp, &self.path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(err);
        }
        // Swap the handle to the new file; on failure the old handle still
        // points at the (now-renamed-over) inode, so reopen errors are fatal
        // for compaction but not for correctness — reopen lazily instead of
        // appending to a dead inode.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|err| PspError::Durability {
                detail: format!("reopen compacted WAL {}: {err}", self.path.display()),
            })?;
        file.seek(SeekFrom::End(0))
            .map_err(|err| PspError::Durability {
                detail: format!("seek compacted WAL {}: {err}", self.path.display()),
            })?;
        self.file = file;
        self.records = records;
        self.bytes = bytes;
        // The rewrite dropped any partial frame a failed rollback left
        // behind, so a poisoned writer is healthy again.
        self.poisoned = false;
        Ok(())
    }

    /// Records currently in the journal.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes currently in the journal (header included).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialsim::engagement::Engagement;
    use socialsim::post::{Region, TargetApplication};
    use socialsim::time::SimDate;
    use socialsim::user::User;

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("psp_journal_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn post(id: u64, text: &str) -> Post {
        Post::new(
            id,
            User::new("journal_user", 120, 24),
            text,
            vec![],
            SimDate::new(2021, 6, 15),
            Region::Europe,
            TargetApplication::Excavator,
            Engagement::new(1000, 20, 5, 2),
        )
    }

    fn record(generation: u64, ids: &[u64]) -> WalRecord {
        WalRecord {
            generation,
            posts: ids
                .iter()
                .map(|id| post(*id, "#dpfdelete kit 360 EUR"))
                .collect(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_scan_round_trips_records() {
        let path = temp_wal("round_trip");
        let scan = scan_wal(&path).unwrap();
        assert!(scan.records.is_empty());
        let mut writer = WalWriter::open(&path, &scan, FaultFs::none()).unwrap();
        writer.append(&record(1, &[1, 2])).unwrap();
        writer.append(&record(2, &[3])).unwrap();
        assert_eq!(writer.records(), 2);

        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records, vec![record(1, &[1, 2]), record(2, &[3])]);
        assert_eq!(scan.valid_bytes, scan.file_bytes);
        assert!(scan.torn.is_none());
    }

    #[test]
    fn a_torn_tail_is_detected_and_truncated_on_reopen() {
        let path = temp_wal("torn_tail");
        let mut writer =
            WalWriter::open(&path, &scan_wal(&path).unwrap(), FaultFs::none()).unwrap();
        writer.append(&record(1, &[1])).unwrap();
        let valid = writer.bytes();
        // A crash mid-append: half a frame of garbage at the end.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x55, 0x00, 0x00, 0x00, 0xAA, 0xBB]);
        std::fs::write(&path, &bytes).unwrap();

        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_bytes, valid);
        assert!(scan.torn.is_some());
        assert_eq!(scan.truncated_bytes(), 6);

        // Reopening truncates; the next scan is clean and appends work.
        let mut writer = WalWriter::open(&path, &scan, FaultFs::none()).unwrap();
        writer.append(&record(2, &[2])).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(scan.torn.is_none());
    }

    #[test]
    fn a_corrupt_byte_invalidates_exactly_the_damaged_suffix() {
        let path = temp_wal("bitflip");
        let mut writer =
            WalWriter::open(&path, &scan_wal(&path).unwrap(), FaultFs::none()).unwrap();
        writer.append(&record(1, &[1])).unwrap();
        let first_end = writer.bytes();
        writer.append(&record(2, &[2])).unwrap();

        // Flip one payload byte in the second frame.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = first_end as usize + 10;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records, vec![record(1, &[1])]);
        assert_eq!(scan.valid_bytes, first_end);
        assert!(scan.torn.unwrap().contains("CRC mismatch"));
    }

    #[test]
    fn a_foreign_header_scans_as_fully_torn_and_resets() {
        let path = temp_wal("foreign");
        std::fs::write(&path, b"NOTAWAL!garbage").unwrap();
        let scan = scan_wal(&path).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_bytes, 0);
        // Reopen resets to an empty journal.
        let writer = WalWriter::open(&path, &scan, FaultFs::none()).unwrap();
        assert_eq!(writer.records(), 0);
        let scan = scan_wal(&path).unwrap();
        assert!(scan.records.is_empty() && scan.torn.is_none());
    }

    #[test]
    fn implausible_frame_lengths_stop_the_scan() {
        let path = temp_wal("implausible");
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0_u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.torn.unwrap().contains("implausible"));
    }

    #[test]
    fn injected_torn_appends_fail_and_roll_back_their_partial_frame() {
        let path = temp_wal("fault_tear");
        let faults = FaultFs::none();
        let mut writer = WalWriter::open(&path, &scan_wal(&path).unwrap(), faults.clone()).unwrap();
        writer.append(&record(1, &[1])).unwrap();
        let valid = writer.bytes();
        faults.tear_append(0, 5);
        let err = writer.append(&record(2, &[2])).unwrap_err();
        assert_eq!(err.kind(), "durability");

        // The surviving writer rolled the partial frame back: the journal
        // ends on a frame boundary holding exactly record 1.
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records, vec![record(1, &[1])]);
        assert!(scan.torn.is_none());
        assert_eq!(scan.file_bytes, valid);

        // The fault disarmed itself and the SAME writer keeps appending on
        // the boundary — the later record must stay replayable.
        writer.append(&record(2, &[2])).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records, vec![record(1, &[1]), record(2, &[2])]);
        assert!(scan.torn.is_none());
    }

    #[test]
    fn injected_sync_failures_surface_as_durability_errors_and_roll_back() {
        let path = temp_wal("fault_sync");
        let faults = FaultFs::none();
        let mut writer = WalWriter::open(&path, &scan_wal(&path).unwrap(), faults.clone()).unwrap();
        faults.fail_sync(0);
        let err = writer.append(&record(1, &[1])).unwrap_err();
        assert_eq!(err.kind(), "durability");
        assert!(err.to_string().contains("fsync"));
        // The fully written but unsynced frame was rolled back; the same
        // writer appends cleanly afterwards.
        assert_eq!(scan_wal(&path).unwrap().records.len(), 0);
        writer.append(&record(1, &[1])).unwrap();
        assert_eq!(scan_wal(&path).unwrap().records, vec![record(1, &[1])]);
    }

    #[test]
    fn compaction_drops_checkpointed_records_atomically() {
        let path = temp_wal("compact");
        let mut writer =
            WalWriter::open(&path, &scan_wal(&path).unwrap(), FaultFs::none()).unwrap();
        for generation in 1..=4 {
            writer.append(&record(generation, &[generation])).unwrap();
        }
        writer.compact(2).unwrap();
        assert_eq!(writer.records(), 2);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(
            scan.records
                .iter()
                .map(|r| r.generation)
                .collect::<Vec<_>>(),
            vec![3, 4]
        );
        // The writer keeps appending on the compacted file.
        writer.append(&record(5, &[5])).unwrap();
        assert_eq!(scan_wal(&path).unwrap().records.len(), 3);
    }

    #[test]
    fn failed_compaction_leaves_the_journal_untouched() {
        let path = temp_wal("compact_fail");
        let faults = FaultFs::none();
        let mut writer = WalWriter::open(&path, &scan_wal(&path).unwrap(), faults.clone()).unwrap();
        for generation in 1..=3 {
            writer.append(&record(generation, &[generation])).unwrap();
        }
        faults.fail_rename(0);
        assert_eq!(writer.compact(2).unwrap_err().kind(), "durability");
        // All three records still present; appends continue to work.
        assert_eq!(scan_wal(&path).unwrap().records.len(), 3);
        writer.append(&record(4, &[4])).unwrap();
        assert_eq!(scan_wal(&path).unwrap().records.len(), 4);
    }
}
