//! The line-JSON wire format: one request or response per line, each tagged
//! with a caller-chosen correlation id.
//!
//! This is deliberately thin — the service surface is
//! [`ServiceRequest`]/[`ServiceResponse`]; the wire layer only adds the `id`
//! envelope and the rule that *every* line in produces exactly one line out,
//! even when the line cannot be parsed (a `bad-request` error response with
//! the id recovered when possible, `0` otherwise).  Any framed transport can
//! reuse it; `examples/tara_daemon.rs` runs it over stdin/stdout.

use super::{ServiceEvent, ServiceRequest, ServiceResponse};
use crate::error::PspError;
use serde::{Deserialize, Serialize};

/// One request line: a correlation id and the request itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireRequest {
    /// Caller-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The request to execute.
    pub request: ServiceRequest,
}

/// One response line, carrying the id of the request it answers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireResponse {
    /// The correlation id of the answered request.
    pub id: u64,
    /// The response.
    pub response: ServiceResponse,
}

/// Parses one request line.
///
/// # Errors
///
/// [`PspError::BadRequest`] when the line is not a JSON [`WireRequest`]; the
/// detail carries the parser's message so clients can see what was wrong.
pub fn decode_request(line: &str) -> Result<WireRequest, PspError> {
    serde_json::from_str(line).map_err(|error| PspError::BadRequest {
        detail: format!("unparseable request line: {error}"),
    })
}

/// Encodes one request line (no trailing newline) — the client half of the
/// wire format, for drivers scripting a daemon (e.g. the daemon's own
/// `--gen-batch` helper emitting ingest lines for the CI recovery smoke).
#[must_use]
pub fn encode_request(request: &WireRequest) -> String {
    serde_json::to_string(request).expect("wire requests always serialize")
}

/// Encodes one response line (no trailing newline).
///
/// Serialization of a well-formed response cannot fail on this surface
/// (every payload type round-trips and scores are finite); if it ever does,
/// the failure itself is encoded as an error response so the one-line-out
/// invariant holds.
#[must_use]
pub fn encode_response(response: &WireResponse) -> String {
    serde_json::to_string(response).unwrap_or_else(|error| {
        let fallback = WireResponse {
            id: response.id,
            response: ServiceResponse::Error {
                error: PspError::BadRequest {
                    detail: format!("response failed to serialize: {error}"),
                }
                .into(),
            },
        };
        serde_json::to_string(&fallback).expect("error responses always serialize")
    })
}

/// One push-event line: an out-of-band [`ServiceEvent`] (monitor delta or
/// scheduled run), distinguishable from response lines by its `event` key —
/// events answer no request, so they carry no correlation id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireEvent {
    /// The pushed event.
    pub event: ServiceEvent,
}

/// Encodes one event line (no trailing newline), with the same
/// cannot-fail-silently fallback as [`encode_response`].
#[must_use]
pub fn encode_event(event: &ServiceEvent) -> String {
    serde_json::to_string(&WireEvent {
        event: event.clone(),
    })
    .unwrap_or_else(|error| {
        error_line(
            "",
            PspError::BadRequest {
                detail: format!("event failed to serialize: {error}"),
            },
        )
    })
}

/// Best-effort recovery of the correlation id from a line that failed to
/// parse as a [`WireRequest`]: finds the first `"id"` key and reads the
/// unsigned integer after its colon.  Returns `0` when no id can be
/// recovered — by construction `decode_request` accepted every line with a
/// syntactically valid id field, so anything goes on malformed input; this
/// keeps the promise that clients get their id echoed back whenever it was
/// legible at all.
#[must_use]
pub fn recover_id(line: &str) -> u64 {
    let bytes = line.as_bytes();
    let mut search = 0;
    while let Some(found) = line[search..].find("\"id\"") {
        let mut at = search + found + "\"id\"".len();
        search = at;
        while at < bytes.len() && bytes[at].is_ascii_whitespace() {
            at += 1;
        }
        if at >= bytes.len() || bytes[at] != b':' {
            continue;
        }
        at += 1;
        while at < bytes.len() && bytes[at].is_ascii_whitespace() {
            at += 1;
        }
        let digits_start = at;
        while at < bytes.len() && bytes[at].is_ascii_digit() {
            at += 1;
        }
        if at > digits_start {
            if let Ok(id) = line[digits_start..at].parse::<u64>() {
                return id;
            }
        }
    }
    0
}

/// A convenience for transports: the `bad-request` response line for an
/// unparseable input line.  The correlation id is recovered from the
/// offending line when legible ([`recover_id`]), `0` otherwise, so a client
/// pipelining requests can still match the failure to what it sent.
#[must_use]
pub fn error_line(line: &str, error: PspError) -> String {
    encode_response(&WireResponse {
        id: recover_id(line),
        response: ServiceResponse::Error {
            error: error.into(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let request = WireRequest {
            id: 42,
            request: ServiceRequest::Status,
        };
        let line = serde_json::to_string(&request).unwrap();
        assert_eq!(decode_request(&line).unwrap(), request);
    }

    #[test]
    fn garbage_lines_decode_to_bad_request() {
        let error = decode_request("{not json").unwrap_err();
        assert_eq!(error.kind(), "bad-request");
        let line = error_line("{not json", error);
        assert!(line.contains("\"bad-request\""));
        assert!(line.contains("\"id\":0"));
    }

    /// The satellite fix: the module docs always promised the id is
    /// "recovered when possible", but `error_line` hardcoded `0`.  A
    /// malformed line whose id field is still legible now gets it echoed.
    #[test]
    fn bad_request_lines_echo_a_recoverable_id() {
        // Truncated JSON — unparseable, but the id field is intact.
        let line = r#"{"id": 42, "request": {"Score": {"db": "excava"#;
        let error = decode_request(line).unwrap_err();
        let out = error_line(line, error);
        assert!(out.contains("\"id\":42"), "recovered id in {out}");
        assert!(out.contains("\"bad-request\""));
    }

    #[test]
    fn id_recovery_is_best_effort_and_never_panics() {
        assert_eq!(recover_id(r#"{"id":7,"request":"Status"}"#), 7);
        assert_eq!(recover_id(r#"{ "id" : 123 garbage"#), 123);
        // A first "id" without a number is skipped, the next one read.
        assert_eq!(recover_id(r#""id" nope "id": 9"#), 9);
        assert_eq!(recover_id(""), 0);
        assert_eq!(recover_id("no id at all"), 0);
        assert_eq!(recover_id(r#"{"id": "string"}"#), 0);
        assert_eq!(recover_id(r#"{"id": -4}"#), 0, "negative ids don't parse");
        // Number too large for u64: digits found but parse fails, falls
        // through to 0 without panicking.
        assert_eq!(recover_id(r#"{"id": 99999999999999999999999999}"#), 0);
        // Multi-byte UTF-8 around the field must not split a char boundary.
        assert_eq!(recover_id(r#"{"café": "naïve", "id": 5"#), 5);
    }

    #[test]
    fn checkpoint_requests_and_responses_round_trip() {
        let request = WireRequest {
            id: 5,
            request: ServiceRequest::Checkpoint,
        };
        let line = encode_request(&request);
        assert_eq!(decode_request(&line).unwrap(), request);
        let response = WireResponse {
            id: 5,
            response: ServiceResponse::Checkpointed {
                generation: 3,
                posts: 120,
                path: "/data/checkpoints/ckpt-3".into(),
            },
        };
        let line = encode_response(&response);
        assert_eq!(
            serde_json::from_str::<WireResponse>(&line).unwrap(),
            response
        );
    }

    /// Durability failures travel the wire as structured error lines: the
    /// stable kind is machine-matchable and the id is echoed, including
    /// when the offending request line itself was malformed.
    #[test]
    fn checkpoint_and_recovery_error_lines_carry_kind_and_id() {
        for (error, kind) in [
            (
                PspError::Durability {
                    detail: "fsync wal.log: injected fault".into(),
                },
                "durability",
            ),
            (PspError::NotDurable, "not-durable"),
            (
                PspError::NotSchedulable {
                    request: "Checkpoint",
                },
                "not-schedulable",
            ),
        ] {
            let line = encode_response(&WireResponse {
                id: 11,
                response: ServiceResponse::Error {
                    error: error.clone().into(),
                },
            });
            assert!(line.contains("\"id\":11"), "id echoed in {line}");
            assert!(line.contains(&format!("\"{kind}\"")), "kind in {line}");
            let decoded: WireResponse = serde_json::from_str(&line).unwrap();
            match decoded.response {
                ServiceResponse::Error { error: wire } => {
                    assert_eq!(wire.kind, kind);
                    assert_eq!(wire.detail, error.to_string());
                }
                other => panic!("unexpected response: {other:?}"),
            }
        }

        // A Checkpoint request line torn mid-transmission still answers
        // bad-request with its id recovered.
        let broken = r#"{"id": 77, "request": "Checkpoi"#;
        let error = decode_request(broken).unwrap_err();
        let out = error_line(broken, error);
        assert!(out.contains("\"id\":77"), "recovered id in {out}");
        assert!(out.contains("\"bad-request\""));
    }

    #[test]
    fn event_lines_round_trip_and_carry_no_id() {
        let event = ServiceEvent::ScheduledRun {
            job: 3,
            response: ServiceResponse::Ingested {
                appended: 0,
                generation: 2,
            },
        };
        let line = encode_event(&event);
        assert!(line.contains("\"event\""));
        let decoded: WireEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(decoded.event, event);
    }

    /// Satellite: the adversarial inputs the chaos harness generates must
    /// all answer structured errors — never panic, never kill the decoder.
    #[test]
    fn adversarial_lines_answer_structured_errors_and_never_panic() {
        // Invalid UTF-8 reaches the decoder lossily (the transports decode
        // bytes with `from_utf8_lossy`), as replacement characters.
        let lossy = String::from_utf8_lossy(b"\xff\xfe{\"id\": 3, \xf0\x28\x8c\x28").into_owned();
        let error = decode_request(&lossy).unwrap_err();
        assert_eq!(error.kind(), "bad-request");
        let out = error_line(&lossy, error);
        assert!(
            out.contains("\"id\":3"),
            "id recovered through noise: {out}"
        );

        // NUL bytes: valid UTF-8, hostile content.
        let nulls = "\0\0{\"id\":9,\0\"request\":\"Status\"}\0";
        let error = decode_request(nulls).unwrap_err();
        assert_eq!(error.kind(), "bad-request");
        assert_eq!(recover_id(nulls), 9);

        // Deeply nested JSON: a structured parse error (the parser's
        // recursion limit), not a stack overflow.
        let nested = format!("{}{}", "{\"id\":4,\"request\":", "[".repeat(200_000));
        let error = decode_request(&nested).unwrap_err();
        assert_eq!(error.kind(), "bad-request");
        assert!(error.to_string().contains("recursion"), "{error}");
        assert_eq!(recover_id(&nested), 4);

        // Duplicate `id` keys: decoding is deterministic (one of them wins,
        // no panic), and recovery reads the first syntactically valid one.
        let duplicate = r#"{"id": 1, "id": 2, "request": "Status"}"#;
        match decode_request(duplicate) {
            Ok(request) => assert!(request.id == 1 || request.id == 2),
            Err(error) => assert_eq!(error.kind(), "bad-request"),
        }
        assert_eq!(recover_id(r#"{"id": nope, "id": 2}"#), 2);
    }

    #[test]
    fn responses_encode_with_their_id() {
        let response = WireResponse {
            id: 7,
            response: ServiceResponse::Ingested {
                appended: 3,
                generation: 1,
            },
        };
        let line = encode_response(&response);
        assert_eq!(
            serde_json::from_str::<WireResponse>(&line).unwrap(),
            response
        );
        assert!(line.contains("\"id\":7"));
    }
}
