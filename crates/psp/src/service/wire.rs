//! The line-JSON wire format: one request or response per line, each tagged
//! with a caller-chosen correlation id.
//!
//! This is deliberately thin — the service surface is
//! [`ServiceRequest`]/[`ServiceResponse`]; the wire layer only adds the `id`
//! envelope and the rule that *every* line in produces exactly one line out,
//! even when the line cannot be parsed (a `bad-request` error response with
//! the id recovered when possible, `0` otherwise).  Any framed transport can
//! reuse it; `examples/tara_daemon.rs` runs it over stdin/stdout.

use super::{ServiceRequest, ServiceResponse};
use crate::error::PspError;
use serde::{Deserialize, Serialize};

/// One request line: a correlation id and the request itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireRequest {
    /// Caller-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The request to execute.
    pub request: ServiceRequest,
}

/// One response line, carrying the id of the request it answers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireResponse {
    /// The correlation id of the answered request.
    pub id: u64,
    /// The response.
    pub response: ServiceResponse,
}

/// Parses one request line.
///
/// # Errors
///
/// [`PspError::BadRequest`] when the line is not a JSON [`WireRequest`]; the
/// detail carries the parser's message so clients can see what was wrong.
pub fn decode_request(line: &str) -> Result<WireRequest, PspError> {
    serde_json::from_str(line).map_err(|error| PspError::BadRequest {
        detail: format!("unparseable request line: {error}"),
    })
}

/// Encodes one response line (no trailing newline).
///
/// Serialization of a well-formed response cannot fail on this surface
/// (every payload type round-trips and scores are finite); if it ever does,
/// the failure itself is encoded as an error response so the one-line-out
/// invariant holds.
#[must_use]
pub fn encode_response(response: &WireResponse) -> String {
    serde_json::to_string(response).unwrap_or_else(|error| {
        let fallback = WireResponse {
            id: response.id,
            response: ServiceResponse::Error {
                error: PspError::BadRequest {
                    detail: format!("response failed to serialize: {error}"),
                }
                .into(),
            },
        };
        serde_json::to_string(&fallback).expect("error responses always serialize")
    })
}

/// A convenience for transports: the `bad-request` response line for an
/// unparseable input line, with id `0` (no id could be recovered).
#[must_use]
pub fn error_line(error: PspError) -> String {
    encode_response(&WireResponse {
        id: 0,
        response: ServiceResponse::Error {
            error: error.into(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let request = WireRequest {
            id: 42,
            request: ServiceRequest::Status,
        };
        let line = serde_json::to_string(&request).unwrap();
        assert_eq!(decode_request(&line).unwrap(), request);
    }

    #[test]
    fn garbage_lines_decode_to_bad_request() {
        let error = decode_request("{not json").unwrap_err();
        assert_eq!(error.kind(), "bad-request");
        let line = error_line(error);
        assert!(line.contains("\"bad-request\""));
        assert!(line.contains("\"id\":0"));
    }

    #[test]
    fn responses_encode_with_their_id() {
        let response = WireResponse {
            id: 7,
            response: ServiceResponse::Ingested {
                appended: 3,
                generation: 1,
            },
        };
        let line = encode_response(&response);
        assert_eq!(
            serde_json::from_str::<WireResponse>(&line).unwrap(),
            response
        );
        assert!(line.contains("\"id\":7"));
    }
}
