//! The TCP socket transport: line-JSON over [`std::net::TcpListener`], with
//! overload protection as a first-class design constraint.
//!
//! A [`SocketServer`] accepts up to [`NetConfig::max_connections`] concurrent
//! connections and runs one reader/writer pipelining pair per connection over
//! the transport-agnostic [`wire`] format — the same lines the stdin daemon
//! speaks.  Everything that can go wrong with a real network peer is bounded:
//!
//! * **Admission control.**  A bounded admission window sits in front of
//!   [`TaraService::submit`]: at most [`NetConfig::admission_capacity`]
//!   requests may be in flight (admitted but not yet answered on a socket)
//!   across all connections.  A request arriving beyond that answers a
//!   structured `overloaded` error — carrying the current depth — immediately,
//!   instead of queueing unboundedly.
//! * **Bounded lines.**  A line longer than [`NetConfig::max_line_bytes`] is
//!   discarded as it streams in ([`LineScanner`] never buffers more than the
//!   limit) and answered with a `line-too-long` error; the connection
//!   survives and the next line is served normally.
//! * **Deadlines and reaping.**  Reads tick on a short timeout so a
//!   connection idle longer than [`NetConfig::idle_timeout`] — including
//!   half-open sockets whose peer vanished — is reaped.  Writes carry
//!   [`NetConfig::write_timeout`]: a consumer too slow to drain its responses
//!   is disconnected rather than ever back-pressuring the worker pool (ticket
//!   channels are unbounded one-shots, so a stalled socket never blocks a
//!   worker).
//! * **Connection cap.**  Beyond `max_connections`, a new connection is
//!   answered with one `connection-limit` error line and closed.
//! * **Graceful drain.**  [`SocketServer::begin_drain`] (the SIGTERM path)
//!   stops the acceptor, stops readers from taking new requests, lets every
//!   already-admitted request finish and write its response, pushes a final
//!   [`ServiceEvent::Draining`] line to subscribed connections, and closes.
//!   [`NetMetrics`] counts admitted vs answered requests so tests (and
//!   operators) can prove no accepted request was dropped unanswered.
//!
//! Subscriptions ([`ServiceRequest::Subscribe`] / `Schedule`) are intercepted
//! on this transport and bound to the requesting connection via dedicated
//! event channels ([`TaraService::subscribe`] / [`TaraService::schedule`]),
//! so push events flow only to the socket that asked for them.

use super::wire::{self, WireRequest, WireResponse};
use super::{ServiceEvent, ServiceRequest, ServiceResponse, Subscription, TaraService};
use crate::engine::StreamingScorer;
use crate::error::PspError;
use serde::{Deserialize, Serialize};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads/writes wake up to check the drain flag, idle
/// deadline and pending events.
const TICK: Duration = Duration::from_millis(25);

/// Tuning knobs for a [`SocketServer`].  The defaults are deliberately
/// conservative; every limit exists so a hostile or broken peer costs a
/// bounded amount of memory and time.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Concurrent connections served; further connects get one
    /// `connection-limit` error line and are closed.
    pub max_connections: usize,
    /// Requests admitted (submitted to the pool, response not yet written)
    /// across all connections; beyond it requests answer `overloaded`.
    pub admission_capacity: usize,
    /// Per-line byte cap; longer lines answer `line-too-long`.
    pub max_line_bytes: usize,
    /// A connection with no readable bytes for this long is reaped (covers
    /// half-open peers that will never speak again).
    pub idle_timeout: Duration,
    /// A single response/event write slower than this disconnects the
    /// consumer (slow consumers never block the service).
    pub write_timeout: Duration,
    /// Outbound messages queued per connection between reader and writer.
    pub write_queue: usize,
    /// During drain, how long a writer keeps waiting for in-flight tickets
    /// before answering them with a `service-stopped` error and closing.
    pub drain_grace: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            admission_capacity: 128,
            max_line_bytes: 1 << 20,
            idle_timeout: Duration::from_secs(300),
            write_timeout: Duration::from_secs(10),
            write_queue: 64,
            drain_grace: Duration::from_secs(30),
        }
    }
}

/// Live socket-transport counters, shared between the server's threads and
/// the owning service (whose `Status` response reports them).
#[derive(Debug, Default)]
pub struct NetMetrics {
    open: AtomicUsize,
    peak: AtomicUsize,
    connections_rejected: AtomicU64,
    admissions_rejected: AtomicU64,
    reaped_idle: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    requests_admitted: AtomicU64,
    requests_answered: AtomicU64,
}

impl NetMetrics {
    /// A serializable point-in-time snapshot (the `Status` response's `net`
    /// block).
    #[must_use]
    pub fn status(&self) -> NetStatus {
        NetStatus {
            open_connections: self.open.load(Ordering::SeqCst),
            peak_connections: self.peak.load(Ordering::SeqCst),
            connections_rejected: self.connections_rejected.load(Ordering::SeqCst),
            admissions_rejected: self.admissions_rejected.load(Ordering::SeqCst),
            reaped_idle: self.reaped_idle.load(Ordering::SeqCst),
            bytes_in: self.bytes_in.load(Ordering::SeqCst),
            bytes_out: self.bytes_out.load(Ordering::SeqCst),
            requests_admitted: self.requests_admitted.load(Ordering::SeqCst),
            requests_answered: self.requests_answered.load(Ordering::SeqCst),
        }
    }

    fn connection_opened(&self) -> usize {
        let open = self.open.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(open, Ordering::SeqCst);
        open
    }

    fn connection_closed(&self) {
        self.open.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The socket-transport block of the `Status` response: all zero when no
/// [`SocketServer`] is attached to the service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStatus {
    /// Connections currently being served.
    pub open_connections: usize,
    /// Most connections ever served at once.
    pub peak_connections: usize,
    /// Connections rejected at the connection cap.
    pub connections_rejected: u64,
    /// Requests rejected with `overloaded` at the admission window.
    pub admissions_rejected: u64,
    /// Connections reaped for exceeding the idle timeout.
    pub reaped_idle: u64,
    /// Bytes read from all connections.
    pub bytes_in: u64,
    /// Bytes written to all connections.
    pub bytes_out: u64,
    /// Requests admitted past the admission window (submitted to the pool).
    pub requests_admitted: u64,
    /// Admitted requests whose response line was written back.
    pub requests_answered: u64,
}

/// One scanned unit out of a [`LineScanner`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScannedLine {
    /// A complete line (without its newline), decoded lossily from UTF-8 —
    /// invalid sequences become U+FFFD and fail request parsing with a
    /// structured error instead of killing the transport.
    Line(String),
    /// A line that exceeded the scanner's byte limit and was discarded as it
    /// streamed in.  `prefix` holds the first bytes (lossily decoded,
    /// bounded by the limit) so an error response can still echo a legible
    /// correlation id.
    TooLong {
        /// The retained head of the oversized line.
        prefix: String,
    },
}

/// Splits a byte stream into newline-terminated lines without ever buffering
/// more than its configured limit: the bounded-intake half of both the
/// socket reader and the stdin daemon.
#[derive(Debug)]
pub struct LineScanner {
    limit: usize,
    buffer: Vec<u8>,
    /// Set while discarding the tail of an oversized line (until the next
    /// newline); the buffered prefix is frozen for id recovery.
    skipping: bool,
}

impl LineScanner {
    /// A scanner that accepts lines up to `limit` bytes (clamped ≥ 1).
    #[must_use]
    pub fn new(limit: usize) -> Self {
        Self {
            limit: limit.max(1),
            buffer: Vec::new(),
            skipping: false,
        }
    }

    /// Feeds a chunk of raw bytes; returns every line completed by it, in
    /// order.
    pub fn push(&mut self, chunk: &[u8]) -> Vec<ScannedLine> {
        let mut out = Vec::new();
        for &byte in chunk {
            if byte == b'\n' {
                let line = String::from_utf8_lossy(&self.buffer).into_owned();
                self.buffer.clear();
                if self.skipping {
                    self.skipping = false;
                    out.push(ScannedLine::TooLong { prefix: line });
                } else {
                    out.push(ScannedLine::Line(line));
                }
            } else if !self.skipping {
                if self.buffer.len() >= self.limit {
                    // Freeze the prefix for id recovery and discard the rest
                    // of the line as it streams in.
                    self.skipping = true;
                } else {
                    self.buffer.push(byte);
                }
            }
        }
        out
    }

    /// Flushes a trailing unterminated line at end of stream, if any.
    #[must_use]
    pub fn finish(&mut self) -> Option<ScannedLine> {
        if self.buffer.is_empty() && !self.skipping {
            return None;
        }
        let line = String::from_utf8_lossy(&self.buffer).into_owned();
        self.buffer.clear();
        if std::mem::take(&mut self.skipping) {
            Some(ScannedLine::TooLong { prefix: line })
        } else {
            Some(ScannedLine::Line(line))
        }
    }
}

/// State shared by the acceptor and every connection thread.
#[derive(Debug)]
struct Shared {
    config: NetConfig,
    metrics: Arc<NetMetrics>,
    draining: AtomicBool,
    /// Requests admitted but not yet written back, across all connections —
    /// the admission window's occupancy.
    pending: AtomicUsize,
}

/// RAII occupancy of one admission slot; dropping it (response written, or
/// the connection died with the request in flight) frees the slot.
#[derive(Debug)]
struct AdmissionPermit {
    shared: Arc<Shared>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.shared.pending.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Shared {
    /// Tries to occupy one admission slot; `Err` carries the observed depth
    /// for the `overloaded` answer.
    fn admit(self: &Arc<Self>) -> Result<AdmissionPermit, usize> {
        let mut current = self.pending.load(Ordering::SeqCst);
        loop {
            if current >= self.config.admission_capacity {
                return Err(current);
            }
            match self.pending.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    return Ok(AdmissionPermit {
                        shared: Arc::clone(self),
                    })
                }
                Err(observed) => current = observed,
            }
        }
    }
}

/// One message from a connection's reader to its writer.  The queue is
/// bounded ([`NetConfig::write_queue`]); FIFO order is what makes pipelining
/// answer in submission order.
enum Outbound {
    /// A pre-encoded line (error responses the reader produced itself).
    Line(String),
    /// An admitted request: the writer waits the ticket and writes the
    /// response, holding the admission slot until the line is out.
    Ticket {
        id: u64,
        ticket: super::runtime::Ticket,
        permit: AdmissionPermit,
    },
    /// A subscription registered by this connection: the writer answers
    /// `response` and then forwards the channel's events to the socket.
    Watch {
        response: String,
        subscription: Subscription,
    },
}

/// A TCP front end serving one [`TaraService`].  Bind with
/// [`SocketServer::bind`]; drop (or call [`shutdown`](Self::shutdown)) to
/// drain gracefully.
#[derive(Debug)]
pub struct SocketServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl SocketServer {
    /// Binds `addr` and starts accepting connections for `service`.
    /// Pass port 0 to let the OS pick (read it back via
    /// [`local_addr`](Self::local_addr)).
    ///
    /// # Errors
    ///
    /// Returns the bind/configure error when the listener cannot be set up.
    pub fn bind<E>(
        service: Arc<TaraService<E>>,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> io::Result<Self>
    where
        E: StreamingScorer + Clone + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            metrics: Arc::clone(&service.state.net),
            draining: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tara-accept".into())
                .spawn(move || accept_loop(&listener, &service, &shared))
                .map_err(io::Error::other)?
        };
        Ok(Self {
            shared,
            local_addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Starts a graceful drain: stop accepting, stop reading new requests,
    /// finish and answer everything already admitted, push a final
    /// [`ServiceEvent::Draining`] to subscribed connections.  Idempotent and
    /// non-blocking; [`shutdown`](Self::shutdown) (or drop) waits for it to
    /// complete.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Drains and waits until every connection has closed.
    pub fn shutdown(&mut self) {
        self.begin_drain();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The `tara-accept` thread: polls the non-blocking listener, enforces the
/// connection cap, spawns connection threads and — once draining — joins
/// them all before exiting.
fn accept_loop<E>(listener: &TcpListener, service: &Arc<TaraService<E>>, shared: &Arc<Shared>)
where
    E: StreamingScorer + Clone + Send + Sync + 'static,
{
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.draining.load(Ordering::SeqCst) {
        // Short-lived connections would otherwise accumulate finished
        // handles without bound.
        connections = reap_finished(connections);
        match listener.accept() {
            Ok((stream, _peer)) => {
                let metrics = &shared.metrics;
                let open = metrics.open.load(Ordering::SeqCst);
                if open >= shared.config.max_connections {
                    metrics.connections_rejected.fetch_add(1, Ordering::SeqCst);
                    reject_connection(stream, shared, open);
                    continue;
                }
                metrics.connection_opened();
                let service = Arc::clone(service);
                let conn_shared = Arc::clone(shared);
                let spawned =
                    std::thread::Builder::new()
                        .name("tara-conn".into())
                        .spawn(move || {
                            serve_connection(stream, &service, &conn_shared);
                            conn_shared.metrics.connection_closed();
                        });
                match spawned {
                    Ok(handle) => connections.push(handle),
                    Err(_) => shared.metrics.connection_closed(),
                }
            }
            Err(error) if error.kind() == ErrorKind::WouldBlock => std::thread::sleep(TICK),
            // Transient accept errors (peer reset mid-handshake etc.): keep
            // accepting.
            Err(_) => std::thread::sleep(TICK),
        }
    }
    for connection in connections {
        let _ = connection.join();
    }
}

fn reap_finished(connections: Vec<JoinHandle<()>>) -> Vec<JoinHandle<()>> {
    connections
        .into_iter()
        .filter_map(|handle| {
            if handle.is_finished() {
                let _ = handle.join();
                None
            } else {
                Some(handle)
            }
        })
        .collect()
}

/// Answers a connection over the cap with one structured error line and
/// closes it; a best-effort write under the configured timeout, so a slow
/// rejected peer cannot stall the acceptor for long either.
fn reject_connection(mut stream: TcpStream, shared: &Arc<Shared>, open: usize) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let line = wire::error_line(
        "",
        PspError::ConnectionLimit {
            open,
            cap: shared.config.max_connections,
        },
    );
    if write_line(&mut stream, &line, &shared.metrics).is_ok() {
        let _ = stream.flush();
    }
    let _ = stream.shutdown(Shutdown::Both);
}

fn write_line(stream: &mut TcpStream, line: &str, metrics: &NetMetrics) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    metrics
        .bytes_out
        .fetch_add(line.len() as u64 + 1, Ordering::SeqCst);
    Ok(())
}

/// One connection: this thread reads, a paired thread writes.  The reader
/// owns admission; the writer owns response ordering, subscriptions and the
/// drain hand-off.
fn serve_connection<E>(stream: TcpStream, service: &Arc<TaraService<E>>, shared: &Arc<Shared>)
where
    E: StreamingScorer + Clone + Send + Sync + 'static,
{
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(TICK)).is_err() {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    };
    let (outbound, inbox) = mpsc::sync_channel::<Outbound>(shared.config.write_queue.max(1));
    // The writer signals fatal write failures here so the reader stops
    // feeding a dead socket.
    let dead = Arc::new(AtomicBool::new(false));
    let writer = {
        let shared = Arc::clone(shared);
        let service = Arc::clone(service);
        let dead = Arc::clone(&dead);
        std::thread::Builder::new()
            .name("tara-conn-writer".into())
            .spawn(move || write_loop(write_half, &inbox, &service, &shared, &dead))
    };
    let Ok(writer) = writer else {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    };
    read_loop(stream, service, shared, &outbound, &dead);
    // Dropping the reader's sender lets the writer finish the queue (every
    // admitted request still gets its response) and then exit.
    drop(outbound);
    let _ = writer.join();
}

/// The reader half: bounded line intake, idle reaping, admission control,
/// request dispatch.
fn read_loop<E>(
    mut stream: TcpStream,
    service: &Arc<TaraService<E>>,
    shared: &Arc<Shared>,
    outbound: &mpsc::SyncSender<Outbound>,
    dead: &AtomicBool,
) where
    E: StreamingScorer + Clone + Send + Sync + 'static,
{
    let mut scanner = LineScanner::new(shared.config.max_line_bytes);
    let mut buffer = [0_u8; 8192];
    let mut last_activity = Instant::now();
    loop {
        if shared.draining.load(Ordering::SeqCst) || dead.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buffer) {
            Ok(0) => return, // EOF: peer closed its half, stop reading.
            Ok(read) => {
                last_activity = Instant::now();
                shared
                    .metrics
                    .bytes_in
                    .fetch_add(read as u64, Ordering::SeqCst);
                for line in scanner.push(&buffer[..read]) {
                    if !handle_line(line, service, shared, outbound) {
                        return;
                    }
                }
            }
            Err(error)
                if error.kind() == ErrorKind::WouldBlock || error.kind() == ErrorKind::TimedOut =>
            {
                if last_activity.elapsed() > shared.config.idle_timeout {
                    // Covers half-open peers too: nothing readable for the
                    // whole idle window means this connection is dead weight.
                    shared.metrics.reaped_idle.fetch_add(1, Ordering::SeqCst);
                    return;
                }
            }
            Err(error) if error.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Dispatches one scanned line; returns `false` when the connection must
/// close (writer gone).
fn handle_line<E>(
    line: ScannedLine,
    service: &Arc<TaraService<E>>,
    shared: &Arc<Shared>,
    outbound: &mpsc::SyncSender<Outbound>,
) -> bool
where
    E: StreamingScorer + Clone + Send + Sync + 'static,
{
    let message = match line {
        ScannedLine::TooLong { prefix } => Outbound::Line(wire::error_line(
            &prefix,
            PspError::LineTooLong {
                limit: shared.config.max_line_bytes,
            },
        )),
        ScannedLine::Line(line) if line.trim().is_empty() => return true,
        ScannedLine::Line(line) => match wire::decode_request(&line) {
            Err(error) => Outbound::Line(wire::error_line(&line, error)),
            Ok(WireRequest { id, request }) => match shared.admit() {
                Err(queued) => {
                    shared
                        .metrics
                        .admissions_rejected
                        .fetch_add(1, Ordering::SeqCst);
                    Outbound::Line(wire::encode_response(&WireResponse {
                        id,
                        response: ServiceResponse::Error {
                            error: PspError::Overloaded {
                                queued,
                                capacity: shared.config.admission_capacity,
                            }
                            .into(),
                        },
                    }))
                }
                Ok(permit) => dispatch_admitted(id, request, permit, service, shared),
            },
        },
    };
    // A full queue back-pressures this connection's intake only — the
    // service itself never waits on a socket.  Disconnected means the writer
    // hit a fatal write error; stop reading.
    outbound.send(message).is_ok()
}

/// Routes one admitted request: subscriptions bind to this connection via
/// dedicated channels; everything else goes to the worker pool.
fn dispatch_admitted<E>(
    id: u64,
    request: ServiceRequest,
    permit: AdmissionPermit,
    service: &Arc<TaraService<E>>,
    shared: &Arc<Shared>,
) -> Outbound
where
    E: StreamingScorer + Clone + Send + Sync + 'static,
{
    shared
        .metrics
        .requests_admitted
        .fetch_add(1, Ordering::SeqCst);
    match request {
        // Request-path Subscribe/Schedule retain their events inside the
        // service for `poll_events` — useless to a socket peer.  Intercept
        // them and route the dedicated channel back to this connection.
        ServiceRequest::Subscribe { spec } => match service.subscribe(spec) {
            Ok(subscription) => answer_watch(
                id,
                ServiceResponse::Subscribed {
                    id: subscription.id(),
                    generation: subscription.generation(),
                },
                subscription,
                shared,
            ),
            Err(error) => answer_now(
                id,
                ServiceResponse::Error {
                    error: error.into(),
                },
                shared,
            ),
        },
        ServiceRequest::Schedule { every_ms, request } => {
            match service.schedule(*request, Duration::from_millis(every_ms.max(1))) {
                Ok(subscription) => answer_watch(
                    id,
                    ServiceResponse::Scheduled {
                        id: subscription.id(),
                        every_ms: every_ms.max(1),
                    },
                    subscription,
                    shared,
                ),
                Err(error) => answer_now(
                    id,
                    ServiceResponse::Error {
                        error: error.into(),
                    },
                    shared,
                ),
            }
        }
        request => Outbound::Ticket {
            id,
            ticket: service.submit(request),
            permit,
        },
    }
}

/// An answer produced on the reader thread (no ticket to wait): count it
/// against the admission window immediately.
fn answer_now(id: u64, response: ServiceResponse, shared: &Arc<Shared>) -> Outbound {
    shared
        .metrics
        .requests_answered
        .fetch_add(1, Ordering::SeqCst);
    Outbound::Line(wire::encode_response(&WireResponse { id, response }))
}

fn answer_watch(
    id: u64,
    response: ServiceResponse,
    subscription: Subscription,
    shared: &Arc<Shared>,
) -> Outbound {
    shared
        .metrics
        .requests_answered
        .fetch_add(1, Ordering::SeqCst);
    Outbound::Watch {
        response: wire::encode_response(&WireResponse { id, response }),
        subscription,
    }
}

/// The writer half: responses in submission order, event forwarding, slow
/// consumer disconnection, drain hand-off.
fn write_loop<E>(
    mut stream: TcpStream,
    inbox: &mpsc::Receiver<Outbound>,
    service: &Arc<TaraService<E>>,
    shared: &Arc<Shared>,
    dead: &AtomicBool,
) where
    E: StreamingScorer + Clone + Send + Sync + 'static,
{
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut watches: Vec<Subscription> = Vec::new();
    let mut drain_deadline: Option<Instant> = None;
    loop {
        match inbox.recv_timeout(TICK) {
            Ok(Outbound::Line(line)) => {
                if write_line(&mut stream, &line, &shared.metrics).is_err() {
                    break;
                }
            }
            Ok(Outbound::Ticket { id, ticket, permit }) => {
                let response = wait_ticket(ticket, shared, &mut drain_deadline);
                let line = wire::encode_response(&WireResponse { id, response });
                let written = write_line(&mut stream, &line, &shared.metrics);
                // The response reached the peer (or the peer is gone either
                // way); the admission slot frees here, after the write, so
                // `admission_capacity` truly bounds reader-to-writer
                // occupancy.
                drop(permit);
                if written.is_err() {
                    break;
                }
                shared
                    .metrics
                    .requests_answered
                    .fetch_add(1, Ordering::SeqCst);
            }
            Ok(Outbound::Watch {
                response,
                subscription,
            }) => {
                if write_line(&mut stream, &response, &shared.metrics).is_err() {
                    break;
                }
                watches.push(subscription);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if !pump_events(&mut stream, &mut watches, &shared.metrics) {
                    break;
                }
            }
            // Reader gone and queue fully drained: every admitted request
            // has been answered.  Close the subscription side and exit.
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let _ = pump_events(&mut stream, &mut watches, &shared.metrics);
                if !watches.is_empty() {
                    // Subscriptions end with an explicit final event so a
                    // subscribed peer can tell drain from a torn connection.
                    let event = ServiceEvent::Draining {
                        generation: service.snapshot().generation(),
                    };
                    let _ = write_line(&mut stream, &wire::encode_event(&event), &shared.metrics);
                }
                break;
            }
        }
        if !pump_events(&mut stream, &mut watches, &shared.metrics) {
            break;
        }
    }
    dead.store(true, Ordering::SeqCst);
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
    // Unwritten queue entries (fatal write error paths) drop here; dropping
    // a ticket abandons the answer and dropping a permit frees the admission
    // slot, so a dead connection never leaks capacity.
}

/// Waits for an admitted request's response.  Outside a drain this waits as
/// long as the request runs; once draining, the remaining wait is bounded by
/// `drain_grace`, after which the ticket is answered `service-stopped` so
/// the drain itself terminates.
fn wait_ticket(
    ticket: super::runtime::Ticket,
    shared: &Arc<Shared>,
    drain_deadline: &mut Option<Instant>,
) -> ServiceResponse {
    let mut ticket = ticket;
    loop {
        let wait = if shared.draining.load(Ordering::SeqCst) {
            let deadline =
                *drain_deadline.get_or_insert_with(|| Instant::now() + shared.config.drain_grace);
            match deadline.checked_duration_since(Instant::now()) {
                Some(left) => left.min(TICK * 4),
                None => {
                    return ServiceResponse::Error {
                        error: PspError::ServiceStopped.into(),
                    }
                }
            }
        } else {
            TICK * 4
        };
        match ticket.wait_timeout(wait.max(Duration::from_millis(1))) {
            Ok(response) => return response,
            Err(unanswered) => ticket = unanswered,
        }
    }
}

/// Forwards pending subscription events to the socket; prunes
/// unsubscribed/closed channels.  Returns `false` on a fatal write error.
fn pump_events(
    stream: &mut TcpStream,
    watches: &mut Vec<Subscription>,
    metrics: &NetMetrics,
) -> bool {
    let mut alive = true;
    watches.retain(|subscription| {
        if !alive {
            return true;
        }
        loop {
            match subscription.receiver.try_recv() {
                Ok(event) => {
                    if write_line(stream, &wire::encode_event(&event), metrics).is_err() {
                        alive = false;
                        return true;
                    }
                }
                Err(mpsc::TryRecvError::Empty) => return true,
                // Unsubscribed (service dropped the sender): stop watching.
                Err(mpsc::TryRecvError::Disconnected) => return false,
            }
        }
    });
    alive
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_splits_lines_across_chunks() {
        let mut scanner = LineScanner::new(64);
        assert_eq!(scanner.push(b"hel"), vec![]);
        assert_eq!(
            scanner.push(b"lo\nwor"),
            vec![ScannedLine::Line("hello".into())]
        );
        assert_eq!(
            scanner.push(b"ld\n\n"),
            vec![
                ScannedLine::Line("world".into()),
                ScannedLine::Line(String::new())
            ]
        );
        assert_eq!(scanner.finish(), None);
    }

    #[test]
    fn scanner_bounds_oversized_lines_and_recovers() {
        let mut scanner = LineScanner::new(8);
        // 32 bytes on one line: buffered at most 8, rest discarded.
        let lines = scanner.push(b"abcdefghijklmnopqrstuvwxyz012345\nok\n");
        assert_eq!(
            lines,
            vec![
                ScannedLine::TooLong {
                    prefix: "abcdefgh".into()
                },
                ScannedLine::Line("ok".into()),
            ]
        );
    }

    #[test]
    fn scanner_decodes_invalid_utf8_lossily() {
        let mut scanner = LineScanner::new(64);
        let lines = scanner.push(b"\xff\xfe{bad}\n");
        match &lines[..] {
            [ScannedLine::Line(line)] => assert!(line.contains('\u{fffd}')),
            other => panic!("unexpected scan: {other:?}"),
        }
    }

    #[test]
    fn scanner_finish_flushes_trailing_fragment() {
        let mut scanner = LineScanner::new(8);
        assert!(scanner.push(b"tail").is_empty());
        assert_eq!(scanner.finish(), Some(ScannedLine::Line("tail".into())));
        assert_eq!(scanner.finish(), None);
        // A trailing oversized fragment reports as too long as well.
        assert!(scanner.push(b"0123456789abcdef").is_empty());
        assert_eq!(
            scanner.finish(),
            Some(ScannedLine::TooLong {
                prefix: "01234567".into()
            })
        );
    }

    #[test]
    fn net_status_defaults_to_zero_and_round_trips() {
        let status = NetStatus::default();
        assert_eq!(status.open_connections, 0);
        assert_eq!(status.bytes_out, 0);
        let json = serde_json::to_string(&status).unwrap();
        assert_eq!(serde_json::from_str::<NetStatus>(&json).unwrap(), status);
    }

    #[test]
    fn metrics_track_peak_connections() {
        let metrics = NetMetrics::default();
        assert_eq!(metrics.connection_opened(), 1);
        assert_eq!(metrics.connection_opened(), 2);
        metrics.connection_closed();
        assert_eq!(metrics.connection_opened(), 2);
        let status = metrics.status();
        assert_eq!(status.open_connections, 2);
        assert_eq!(status.peak_connections, 2);
    }

    #[test]
    fn default_config_is_bounded_everywhere() {
        let config = NetConfig::default();
        assert!(config.max_connections > 0);
        assert!(config.admission_capacity > 0);
        assert_eq!(config.max_line_bytes, 1 << 20);
        assert!(config.write_queue > 0);
        assert!(config.idle_timeout > config.write_timeout);
    }
}
