//! The hand-rolled thread-pool + channel runtime the service runs on.
//!
//! Offline constraint: no async executor is available, and the honest
//! offline alternative (per the roadmap) is plain threads and channels.  A
//! [`WorkerPool`] owns N worker threads draining one shared job queue; a
//! submitted request runs as one job and answers through a one-shot channel
//! ([`Ticket`]).  [`WorkerPool::stop`] (also run on drop, followed by a join)
//! makes shutdown deterministic *and bounded*: in-flight jobs finish, but
//! jobs still queued are discarded — dropping a job drops its ticket sender,
//! so every pending [`Ticket`] resolves to a structured `service-stopped`
//! error instead of hanging (or instead of shutdown blocking arbitrarily
//! long behind a saturated queue).
//!
//! Two hardening guarantees live here:
//!
//! * **Panic resilience.**  Every job runs under `catch_unwind`, so a
//!   panicking request can never kill a `tara-worker-*` thread: the worker
//!   records the panic in the pool's [`PoolStats`] and keeps draining the
//!   queue.  (The service layer additionally converts the panic into a
//!   structured `internal-error` response before the unwind even reaches the
//!   pool — the pool-level catch is the backstop that keeps the thread alive
//!   no matter what.)  This requires `panic = "unwind"`; the workspace
//!   profile pins it and a test below asserts it, because under
//!   `panic = "abort"` the first bad request would take the whole daemon
//!   down.
//! * **Deadlines and cancellation.**  A [`CancelToken`] travels with a
//!   request submitted via a deadline; long computations check it
//!   cooperatively between units of work (sweep windows, matrix cells) and
//!   bail out with an `Expired` response instead of burning a worker on an
//!   answer nobody is waiting for.  [`Ticket::wait_timeout`] is the
//!   client-side half: bound the wait without losing the ticket.

use super::ServiceResponse;
use crate::error::PspError;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One unit of work for the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Live queue-depth and panic counters for a [`WorkerPool`], shared with the
/// workers and readable at any time (the service's `Status` response reports
/// them).
#[derive(Debug, Default)]
pub(super) struct PoolMetrics {
    queued: AtomicUsize,
    in_flight: AtomicUsize,
    panicked: AtomicUsize,
}

/// A point-in-time snapshot of a pool's internal metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs accepted but not yet picked up by a worker.
    pub queued: usize,
    /// Jobs currently executing on a worker.
    pub in_flight: usize,
    /// Jobs that panicked (and were caught) since the pool started.
    pub panicked: usize,
}

impl PoolMetrics {
    /// Counts a panic the service layer caught itself (and answered with a
    /// structured response) — the unwind never reaches the pool's backstop
    /// catch, so the pool would otherwise under-report.
    pub(super) fn record_panic(&self) {
        self.panicked.fetch_add(1, Ordering::SeqCst);
    }

    pub(super) fn stats(&self) -> PoolStats {
        PoolStats {
            queued: self.queued.load(Ordering::SeqCst),
            in_flight: self.in_flight.load(Ordering::SeqCst),
            panicked: self.panicked.load(Ordering::SeqCst),
        }
    }
}

/// A fixed-size worker pool over one shared job queue.
#[derive(Debug)]
pub struct WorkerPool {
    /// `None` once shutdown has begun; dropping the sender closes the queue.
    sender: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<PoolMetrics>,
    /// Once set, workers discard queued jobs instead of running them —
    /// discarding drops each job's ticket sender, which answers the waiting
    /// [`Ticket`] with `service-stopped`.
    stopping: Arc<AtomicBool>,
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to at least one) draining a shared
    /// queue.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self::with_metrics(threads, Arc::new(PoolMetrics::default()))
    }

    /// Spawns the pool around caller-shared metrics (the service keeps a
    /// handle so `Status` can report depths without reaching into the pool).
    pub(super) fn with_metrics(threads: usize, metrics: Arc<PoolMetrics>) -> Self {
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let stopping = Arc::new(AtomicBool::new(false));
        let workers = (0..threads.max(1))
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                let metrics = Arc::clone(&metrics);
                let stopping = Arc::clone(&stopping);
                std::thread::Builder::new()
                    .name(format!("tara-worker-{index}"))
                    .spawn(move || loop {
                        // Take the next job while holding the queue lock, then
                        // release the lock before running it so other workers
                        // keep draining.  A poisoned lock means a sibling
                        // worker panicked between recv and unlock — the
                        // receiver itself is still sound, so recover it.
                        let job = {
                            let queue = receiver.lock().unwrap_or_else(PoisonError::into_inner);
                            queue.recv()
                        };
                        match job {
                            Ok(job) => {
                                metrics.queued.fetch_sub(1, Ordering::SeqCst);
                                // Shutdown ordering: once `stop` has been
                                // called, queued work is *discarded*, not
                                // run — dropping the job drops its ticket
                                // sender, so the submitter's `Ticket::wait`
                                // resolves to `service-stopped` immediately
                                // instead of hanging behind a queue nobody
                                // will ever fully drain.
                                if stopping.load(Ordering::SeqCst) {
                                    drop(job);
                                    continue;
                                }
                                metrics.in_flight.fetch_add(1, Ordering::SeqCst);
                                // The worker survives a panicking job: catch
                                // the unwind, count it, keep draining.  The
                                // pool never silently shrinks.
                                let outcome =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                                metrics.in_flight.fetch_sub(1, Ordering::SeqCst);
                                if outcome.is_err() {
                                    metrics.panicked.fetch_add(1, Ordering::SeqCst);
                                }
                            }
                            // Sender dropped: queue drained, shut down.
                            Err(mpsc::RecvError) => break,
                        }
                    })
                    .expect("spawning a service worker thread failed")
            })
            .collect();
        Self {
            sender: Mutex::new(Some(sender)),
            workers,
            metrics,
            stopping,
        }
    }

    /// Begins shutdown: no new jobs are accepted, in-flight jobs finish, and
    /// jobs still queued are discarded so their [`Ticket`]s resolve to
    /// `service-stopped` rather than waiting on work that will never start.
    /// Idempotent; `Drop` calls it before joining the workers.
    pub fn stop(&self) {
        // Order matters: flip the flag *before* closing the queue so a worker
        // can never observe "queue closed" without also observing "stopping".
        self.stopping.store(true, Ordering::SeqCst);
        let mut sender = self.sender.lock().unwrap_or_else(PoisonError::into_inner);
        sender.take();
    }

    /// Number of worker threads.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Queue-depth and panic counters, observed now.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.metrics.stats()
    }

    /// Enqueues a job for the next free worker.
    ///
    /// The sender is cloned out of the lock's critical section so concurrent
    /// submitters serialize only on the `Option` check, not on the whole
    /// channel send — an `mpsc::Sender` clone is itself a valid producer.
    ///
    /// # Errors
    ///
    /// Returns [`PspError::ServiceStopped`] when the pool has shut down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PspError> {
        let sender = {
            let guard = self.sender.lock().unwrap_or_else(PoisonError::into_inner);
            guard.clone()
        };
        match sender {
            Some(sender) => {
                self.metrics.queued.fetch_add(1, Ordering::SeqCst);
                sender.send(Box::new(job)).map_err(|_| {
                    self.metrics.queued.fetch_sub(1, Ordering::SeqCst);
                    PspError::ServiceStopped
                })
            }
            None => Err(PspError::ServiceStopped),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Begin shutdown (in-flight jobs finish, queued jobs are discarded
        // with their tickets answered), then join: each worker exits on
        // RecvError once the closed queue is empty.
        self.stop();
        for worker in self.workers.drain(..) {
            // A worker that panicked already reported; don't double-panic in
            // the destructor.
            let _ = worker.join();
        }
    }
}

/// A cooperative cancellation token: carried by a request, checked by the
/// service between units of work (sweep windows, matrix cells).
///
/// A token is *cooperative* when someone can actually cancel it — it carries
/// a deadline, or was handed out so a caller can [`cancel`](Self::cancel) it.
/// The plain synchronous path uses a disabled token, which lets the service
/// keep the faster monolithic sweep/matrix execution (cancellation checks
/// require decomposing the work into per-window units).
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    started: Instant,
    cooperative: bool,
}

impl CancelToken {
    fn build(deadline: Option<Instant>, cooperative: bool) -> Self {
        Self {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline,
                started: Instant::now(),
                cooperative,
            }),
        }
    }

    /// A token with no deadline that a holder may still
    /// [`cancel`](Self::cancel) explicitly.
    #[must_use]
    pub fn new() -> Self {
        Self::build(None, true)
    }

    /// A token that expires `after` the current instant.
    #[must_use]
    pub fn with_deadline(after: Duration) -> Self {
        Self::build(Instant::now().checked_add(after), true)
    }

    /// The disabled token the plain request path uses: never expires, never
    /// cancels, and tells the executor it may skip cooperative check points.
    pub(super) fn disabled() -> Self {
        Self::build(None, false)
    }

    /// Whether the executor should run cancellable (per-unit) execution.
    pub(super) fn is_cooperative(&self) -> bool {
        self.inner.cooperative
    }

    /// Requests cancellation; checked at the next cooperative check point.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the token was cancelled or its deadline has passed.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// Milliseconds elapsed since the token was created — what an
    /// `Expired { waited_ms }` response reports.
    #[must_use]
    pub fn waited_ms(&self) -> u64 {
        u64::try_from(self.inner.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

/// The pending response of one submitted request — a one-shot channel the
/// pool's worker answers on.
#[derive(Debug)]
pub struct Ticket {
    receiver: mpsc::Receiver<ServiceResponse>,
}

impl Ticket {
    /// Pairs a ticket with the sender its job answers on.
    pub(super) fn new() -> (mpsc::Sender<ServiceResponse>, Self) {
        let (sender, receiver) = mpsc::channel();
        (sender, Self { receiver })
    }

    /// Blocks until the response arrives.  If the job was dropped unanswered
    /// (pool shut down before it ran), this resolves to a
    /// [`PspError::ServiceStopped`] error response instead of hanging.
    #[must_use]
    pub fn wait(self) -> ServiceResponse {
        self.receiver
            .recv()
            .unwrap_or_else(|_| ServiceResponse::Error {
                error: PspError::ServiceStopped.into(),
            })
    }

    /// Waits at most `timeout` for the response.  On timeout the ticket
    /// comes back unconsumed, so the caller can keep waiting (or drop it to
    /// abandon the answer — the worker's send to an abandoned ticket is a
    /// no-op).
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when the response did not arrive in time.
    pub fn wait_timeout(self, timeout: Duration) -> Result<ServiceResponse, Self> {
        match self.receiver.recv_timeout(timeout) {
            Ok(response) => Ok(response),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(self),
            Err(mpsc::RecvTimeoutError::Disconnected) => Ok(ServiceResponse::Error {
                error: PspError::ServiceStopped.into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_drop_joins_cleanly() {
        let counter = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = mpsc::channel();
        let pool = WorkerPool::new(3);
        assert_eq!(pool.worker_count(), 3);
        for _ in 0..20 {
            let counter = Arc::clone(&counter);
            let done_tx = done_tx.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                let _ = done_tx.send(());
            })
            .expect("pool accepts jobs");
        }
        // Wait for every job to complete *before* dropping: drop discards
        // still-queued work by design, and this test is about the happy path.
        for _ in 0..20 {
            done_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("job completes");
        }
        drop(pool); // joins workers
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    /// Satellite regression: stopping a pool whose queue is saturated must
    /// answer every still-queued `Ticket` with `service-stopped` — before the
    /// fix, `stop`/drop ran the queued jobs, so shutdown blocked arbitrarily
    /// long behind whatever was stuck in front of them (and a receiver whose
    /// job never got to run hung forever).
    #[test]
    fn stop_with_saturated_queue_answers_every_pending_ticket() {
        let pool = WorkerPool::new(1);
        // Occupy the only worker so everything behind it stays queued.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (running_tx, running_rx) = mpsc::channel::<()>();
        pool.execute(move || {
            running_tx.send(()).expect("test alive");
            gate_rx.recv().expect("gate opens");
        })
        .expect("pool accepts jobs");
        running_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("blocker job starts");
        // Saturate the queue with ticket-answering jobs that will never run.
        let tickets: Vec<Ticket> = (0..16)
            .map(|_| {
                let (sender, ticket) = Ticket::new();
                pool.execute(move || {
                    let _ = sender.send(ServiceResponse::Error {
                        error: PspError::Internal {
                            detail: "should have been discarded".into(),
                        }
                        .into(),
                    });
                })
                .expect("pool accepts jobs");
                ticket
            })
            .collect();
        pool.stop();
        // New work is refused immediately.
        assert!(matches!(pool.execute(|| {}), Err(PspError::ServiceStopped)));
        // The blocker is still holding the worker, yet every queued ticket
        // resolves promptly (bounded wait) to `service-stopped`: the worker
        // discards queued jobs as it reaches them, dropping their senders.
        gate_tx.send(()).expect("worker alive");
        for ticket in tickets {
            match ticket
                .wait_timeout(Duration::from_secs(10))
                .expect("ticket answered, not hung")
            {
                ServiceResponse::Error { error } => assert_eq!(error.kind, "service-stopped"),
                other => panic!("queued job ran after stop: {other:?}"),
            }
        }
        drop(pool);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.worker_count(), 1);
        let (sender, receiver) = mpsc::channel();
        pool.execute(move || sender.send(7_usize).expect("receiver alive"))
            .expect("pool accepts jobs");
        assert_eq!(receiver.recv().unwrap(), 7);
    }

    #[test]
    fn unanswered_tickets_resolve_to_service_stopped() {
        let (sender, ticket) = Ticket::new();
        drop(sender);
        match ticket.wait() {
            ServiceResponse::Error { error } => assert_eq!(error.kind, "service-stopped"),
            other => panic!("expected an error response, got {other:?}"),
        }
    }

    /// The regression the tentpole fixes: a panicking job used to kill its
    /// worker thread for good; after `worker_count` panics the pool was
    /// empty and every later job hung.  Now the worker catches the unwind
    /// and keeps draining.
    #[test]
    fn workers_survive_more_panics_than_there_are_threads() {
        let pool = WorkerPool::new(2);
        for _ in 0..6 {
            pool.execute(|| panic!("injected job failure"))
                .expect("pool accepts jobs");
        }
        // Every worker would be dead by now under the old runtime; these
        // jobs would never run and recv() below would hang forever.
        let (sender, receiver) = mpsc::channel();
        for n in 0..4_usize {
            let sender = sender.clone();
            pool.execute(move || sender.send(n).expect("receiver alive"))
                .expect("pool accepts jobs");
        }
        drop(sender);
        let mut answered: Vec<usize> = receiver.iter().collect();
        answered.sort_unstable();
        assert_eq!(answered, vec![0, 1, 2, 3]);
        // A worker records its panic *after* the catch, so the counter can
        // trail the completion channel briefly; wait for it, bounded.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.stats().panicked < 6 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        let stats = pool.stats();
        assert_eq!(stats.panicked, 6);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.queued, 0);
    }

    /// `catch_unwind` only works when unwinding exists; the workspace pins
    /// `panic = "unwind"` and this guard fails loudly if a profile change
    /// ever compiles the recovery path away.
    #[test]
    #[allow(clippy::assertions_on_constants)] // cfg!() is the point: a profile guard
    fn panic_strategy_is_unwind_so_workers_can_recover() {
        assert!(
            cfg!(panic = "unwind"),
            "psp::service::runtime requires panic = \"unwind\"; \
             a panic = \"abort\" profile would turn every caught request \
             panic into whole-process death"
        );
    }

    /// Satellite: `execute` must not hold the sender lock across the send —
    /// many submitters racing a slow queue should all get through promptly.
    #[test]
    fn concurrent_submitters_all_enqueue() {
        let pool = Arc::new(WorkerPool::new(2));
        let counter = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = mpsc::channel();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                let counter = Arc::clone(&counter);
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let counter = Arc::clone(&counter);
                        let done_tx = done_tx.clone();
                        pool.execute(move || {
                            counter.fetch_add(1, Ordering::SeqCst);
                            let _ = done_tx.send(());
                        })
                        .expect("pool accepts jobs");
                    }
                });
            }
        });
        // Every submission made it into the queue; wait for completion before
        // dropping (drop discards queued work by design).
        for _ in 0..8 * 50 {
            done_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("job completes");
        }
        drop(Arc::try_unwrap(pool).expect("all submitters done")); // join workers
        assert_eq!(counter.load(Ordering::SeqCst), 8 * 50);
    }

    #[test]
    fn wait_timeout_returns_the_ticket_then_the_answer() {
        let pool = WorkerPool::new(1);
        let (sender, ticket) = Ticket::new();
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        pool.execute(move || {
            gate_rx.recv().expect("gate opens");
            sender
                .send(ServiceResponse::Error {
                    error: PspError::ServiceStopped.into(),
                })
                .expect("ticket alive");
        })
        .expect("pool accepts jobs");
        // The job is gated: the first bounded wait must time out and hand
        // the ticket back...
        let ticket = match ticket.wait_timeout(Duration::from_millis(20)) {
            Err(ticket) => ticket,
            Ok(other) => panic!("expected a timeout, got {other:?}"),
        };
        // ...then the answer arrives once the gate opens.
        gate_tx.send(()).expect("worker alive");
        match ticket.wait() {
            ServiceResponse::Error { error } => assert_eq!(error.kind, "service-stopped"),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn cancel_tokens_expire_by_deadline_and_by_hand() {
        let token = CancelToken::with_deadline(Duration::from_millis(5));
        assert!(token.is_cooperative());
        assert!(!token.is_cancelled());
        std::thread::sleep(Duration::from_millis(10));
        assert!(token.is_cancelled(), "deadline passed");
        assert!(token.waited_ms() >= 5);

        let manual = CancelToken::new();
        assert!(!manual.is_cancelled());
        manual.clone().cancel();
        assert!(manual.is_cancelled(), "cancel is shared across clones");

        let disabled = CancelToken::disabled();
        assert!(!disabled.is_cooperative());
        assert!(!disabled.is_cancelled());
    }
}
