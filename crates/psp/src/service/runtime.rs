//! The hand-rolled thread-pool + channel runtime the service runs on.
//!
//! Offline constraint: no async executor is available, and the honest
//! offline alternative (per the roadmap) is plain threads and channels.  A
//! [`WorkerPool`] owns N worker threads draining one shared job queue; a
//! submitted request runs as one job and answers through a one-shot channel
//! ([`Ticket`]).  Dropping the pool closes the queue and joins every worker,
//! so shutdown is deterministic — in-flight jobs finish, queued jobs run,
//! nothing is leaked.

use super::ServiceResponse;
use crate::error::PspError;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One unit of work for the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool over one shared job queue.
#[derive(Debug)]
pub struct WorkerPool {
    /// `None` once shutdown has begun; dropping the sender closes the queue.
    sender: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to at least one) draining a shared
    /// queue.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads.max(1))
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("tara-worker-{index}"))
                    .spawn(move || loop {
                        // Take the next job while holding the queue lock, then
                        // release the lock before running it so other workers
                        // keep draining.
                        let job = {
                            let queue = receiver.lock().expect("worker queue lock poisoned");
                            queue.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            // Sender dropped: queue drained, shut down.
                            Err(mpsc::RecvError) => break,
                        }
                    })
                    .expect("spawning a service worker thread failed")
            })
            .collect();
        Self {
            sender: Mutex::new(Some(sender)),
            workers,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job for the next free worker.
    ///
    /// # Errors
    ///
    /// Returns [`PspError::ServiceStopped`] when the pool has shut down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PspError> {
        let sender = self.sender.lock().expect("pool sender lock poisoned");
        match sender.as_ref() {
            Some(sender) => sender
                .send(Box::new(job))
                .map_err(|_| PspError::ServiceStopped),
            None => Err(PspError::ServiceStopped),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the queue, then join: each worker drains remaining jobs and
        // exits on RecvError.
        if let Ok(mut sender) = self.sender.lock() {
            sender.take();
        }
        for worker in self.workers.drain(..) {
            // A worker that panicked already reported; don't double-panic in
            // the destructor.
            let _ = worker.join();
        }
    }
}

/// The pending response of one submitted request — a one-shot channel the
/// pool's worker answers on.
#[derive(Debug)]
pub struct Ticket {
    receiver: mpsc::Receiver<ServiceResponse>,
}

impl Ticket {
    /// Pairs a ticket with the sender its job answers on.
    pub(super) fn new() -> (mpsc::Sender<ServiceResponse>, Self) {
        let (sender, receiver) = mpsc::channel();
        (sender, Self { receiver })
    }

    /// Blocks until the response arrives.  If the job was dropped unanswered
    /// (pool shut down before it ran), this resolves to a
    /// [`PspError::ServiceStopped`] error response instead of hanging.
    #[must_use]
    pub fn wait(self) -> ServiceResponse {
        self.receiver
            .recv()
            .unwrap_or_else(|_| ServiceResponse::Error {
                error: PspError::ServiceStopped.into(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_drop_joins_cleanly() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(3);
        assert_eq!(pool.worker_count(), 3);
        for _ in 0..20 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .expect("pool accepts jobs");
        }
        drop(pool); // joins workers after the queue drains
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.worker_count(), 1);
        let (sender, receiver) = mpsc::channel();
        pool.execute(move || sender.send(7_usize).expect("receiver alive"))
            .expect("pool accepts jobs");
        assert_eq!(receiver.recv().unwrap(), 7);
    }

    #[test]
    fn unanswered_tickets_resolve_to_service_stopped() {
        let (sender, ticket) = Ticket::new();
        drop(sender);
        match ticket.wait() {
            ServiceResponse::Error { error } => assert_eq!(error.kind, "service-stopped"),
            other => panic!("expected an error response, got {other:?}"),
        }
    }
}
