//! Scheduled recurring sweeps: one timer thread driving read-only requests
//! at fixed intervals against the latest published snapshot.
//!
//! The paper's dynamic-TARA loop re-assesses risk *continuously*; with
//! subscriptions covering the push-on-ingest half, the scheduler covers the
//! clock-driven half — "re-run this `Sweep`/`Matrix` every N milliseconds
//! and deliver the result like a subscription event".  One
//! `tara-scheduler` thread owns the timetable: it sleeps until the next
//! job is due (condvar with timeout, woken early when a job is added,
//! removed or the service shuts down), executes due requests through the
//! same snapshot-isolated `respond` path every other request uses, and
//! sends each result as a [`ServiceEvent::ScheduledRun`] on the job's event
//! channel.  A job whose receiver is gone unschedules itself; a job whose
//! request panics answers with the structured `internal-error` response and
//! stays scheduled (the scheduler thread survives, same contract as the
//! worker pool).

use super::{ServiceEvent, ServiceRequest, ServiceResponse};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A recurring job on the timetable.
#[derive(Debug)]
struct ScheduledJob {
    id: u64,
    request: ServiceRequest,
    every: Duration,
    next_due: Instant,
    sender: mpsc::Sender<ServiceEvent>,
}

/// The shared timetable between requesters (who add/remove jobs) and the
/// scheduler thread (which runs them).
#[derive(Debug, Default)]
pub(super) struct SchedulerQueue {
    jobs: Mutex<Vec<ScheduledJob>>,
    wake: Condvar,
    shutdown: AtomicBool,
}

/// The longest the scheduler sleeps with an empty timetable (it still wakes
/// promptly via the condvar when a job is added).
const IDLE_WAIT: Duration = Duration::from_secs(1);

impl SchedulerQueue {
    /// Adds a recurring job; the first run is due one full interval from
    /// now.  Intervals are clamped to at least one millisecond so a
    /// zero-interval job cannot spin the scheduler thread.
    pub(super) fn add(
        &self,
        id: u64,
        request: ServiceRequest,
        every: Duration,
        sender: mpsc::Sender<ServiceEvent>,
    ) {
        let every = every.max(Duration::from_millis(1));
        let mut jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        jobs.push(ScheduledJob {
            id,
            request,
            every,
            next_due: Instant::now() + every,
            sender,
        });
        drop(jobs);
        self.wake.notify_all();
    }

    /// Removes a job by id; returns whether it existed.
    pub(super) fn remove(&self, id: u64) -> bool {
        let mut jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        let before = jobs.len();
        jobs.retain(|job| job.id != id);
        let removed = jobs.len() != before;
        drop(jobs);
        if removed {
            self.wake.notify_all();
        }
        removed
    }

    /// Number of scheduled jobs.
    pub(super) fn len(&self) -> usize {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Signals the scheduler thread to exit and wakes it.
    pub(super) fn shut_down(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }

    pub(super) fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Collects the requests due now — bumping each job's `next_due` by
    /// whole intervals past `now`, so a stalled scheduler (one slow tick)
    /// coalesces missed runs instead of bursting to catch up — and returns
    /// how long to sleep until the next one.
    fn take_due(
        &self,
        now: Instant,
    ) -> (
        Vec<(u64, ServiceRequest, mpsc::Sender<ServiceEvent>)>,
        Duration,
    ) {
        let mut jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        let mut due = Vec::new();
        for job in jobs.iter_mut() {
            if job.next_due <= now {
                due.push((job.id, job.request.clone(), job.sender.clone()));
                while job.next_due <= now {
                    job.next_due += job.every;
                }
            }
        }
        let wait = jobs
            .iter()
            .map(|job| job.next_due.saturating_duration_since(now))
            .min()
            .unwrap_or(IDLE_WAIT);
        (due, wait)
    }

    /// Sleeps until `wait` elapses or the timetable changes.
    fn sleep(&self, wait: Duration) {
        let jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        let _unused = self
            .wake
            .wait_timeout(jobs, wait)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// The scheduler thread body: `respond` executes one request against the
/// latest snapshot (the same path every service request takes).  Runs until
/// [`SchedulerQueue::shut_down`].
pub(super) fn run(queue: &SchedulerQueue, respond: impl Fn(ServiceRequest) -> ServiceResponse) {
    loop {
        if queue.is_shut_down() {
            break;
        }
        let (due, wait) = queue.take_due(Instant::now());
        for (id, request, sender) in due {
            // The scheduler thread survives a panicking request exactly like
            // a pool worker: catch, answer structured, carry on.
            let response =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| respond(request)))
                    .unwrap_or_else(|payload| ServiceResponse::Error {
                        error: crate::error::PspError::Internal {
                            detail: super::panic_detail(payload.as_ref()),
                        }
                        .into(),
                    });
            if sender
                .send(ServiceEvent::ScheduledRun { job: id, response })
                .is_err()
            {
                // Receiver gone: nobody is listening, unschedule.
                queue.remove(id);
            }
        }
        if queue.is_shut_down() {
            break;
        }
        queue.sleep(wait);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn due_jobs_fire_and_coalesce_missed_intervals() {
        let queue = SchedulerQueue::default();
        let (tx, _rx) = mpsc::channel();
        queue.add(1, ServiceRequest::Status, Duration::from_millis(10), tx);
        assert_eq!(queue.len(), 1);

        // Well past several intervals: exactly one due entry, next_due in
        // the future.
        let later = Instant::now() + Duration::from_millis(100);
        let (due, _) = queue.take_due(later);
        assert_eq!(due.len(), 1);
        let (due_again, wait) = queue.take_due(later);
        assert!(due_again.is_empty(), "missed runs coalesce");
        assert!(wait <= Duration::from_millis(10));
    }

    #[test]
    fn remove_unschedules_and_reports_unknown_ids() {
        let queue = SchedulerQueue::default();
        let (tx, _rx) = mpsc::channel();
        queue.add(7, ServiceRequest::Status, Duration::from_millis(5), tx);
        assert!(queue.remove(7));
        assert!(!queue.remove(7), "already gone");
        assert_eq!(queue.len(), 0);
    }

    #[test]
    fn the_run_loop_delivers_events_and_survives_panicking_requests() {
        let queue = Arc::new(SchedulerQueue::default());
        let (tx, rx) = mpsc::channel();
        queue.add(
            1,
            ServiceRequest::Status,
            Duration::from_millis(5),
            tx.clone(),
        );
        queue.add(2, ServiceRequest::ExportCache, Duration::from_millis(5), tx);
        let thread = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                run(&queue, |request| match request {
                    ServiceRequest::Status => panic!("injected scheduler failure"),
                    _ => ServiceResponse::Unscheduled { id: 0 },
                });
            })
        };
        // Both jobs keep firing: the panicking one answers internal-error,
        // the other its mapped response — the thread survives the panic.
        let mut internal = 0;
        let mut ok = 0;
        while internal == 0 || ok == 0 {
            match rx
                .recv_timeout(Duration::from_secs(5))
                .expect("events flow")
            {
                ServiceEvent::ScheduledRun { job: 1, response } => match response {
                    ServiceResponse::Error { error } => {
                        assert_eq!(error.kind, "internal-error");
                        assert!(error.detail.contains("injected scheduler failure"));
                        internal += 1;
                    }
                    other => panic!("unexpected response: {other:?}"),
                },
                ServiceEvent::ScheduledRun { job: 2, response } => {
                    assert_eq!(response, ServiceResponse::Unscheduled { id: 0 });
                    ok += 1;
                }
                other => panic!("unexpected event: {other:?}"),
            }
        }
        queue.shut_down();
        thread.join().expect("scheduler thread exits cleanly");
    }
}
