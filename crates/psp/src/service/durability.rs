//! The durability plane: atomic checkpoints + write-ahead journal + startup
//! recovery for the TARA service.
//!
//! A data directory owned by a [`DurableStore`] looks like:
//!
//! ```text
//! <data-dir>/
//!   wal.log                      write-ahead ingest journal (see `journal`)
//!   checkpoints/
//!     ckpt-<generation>/
//!       manifest.json            generation, post count, per-file byte counts + CRC32s
//!       corpus.json              the full corpus at the checkpointed generation
//!       signals.json             the engine's exported signal cache (warm restart)
//! ```
//!
//! **Invariants**
//!
//! * *WAL-append happens-before publish*: an `Ingest` is journaled and
//!   fsync'd before its generation swaps in
//!   ([`SnapshotPublisher::ingest_logged`](super::snapshot::SnapshotPublisher::ingest_logged)),
//!   so every acknowledged batch is on disk.
//! * *Checkpoints are atomic*: all three files are written and fsync'd into
//!   a `.tmp-ckpt-<generation>` sibling, then one directory rename publishes
//!   them.  A crash at any point leaves either the old set of valid
//!   checkpoints or the old set plus one complete new checkpoint — never a
//!   partial one (partials are swept on the next recovery).
//! * *Recovery never trusts bytes it cannot verify*: a checkpoint must pass
//!   manifest + CRC32 + parse + post-count validation to be loaded (newest
//!   valid wins, older ones are fallbacks); the WAL is replayed up to its
//!   valid prefix and the torn tail is physically truncated.
//! * *Bit-identical reconstruction*: rebuild-over-snapshot-corpus plus
//!   [`StreamingScorer::restore_generation`] reproduces the pre-crash
//!   engine's responses exactly, on both engine shapes (property-tested in
//!   `tests/durability.rs`).

use super::journal::{crc32, scan_wal, FaultFs, WalRecord, WalWriter};
use crate::engine::{SignalCacheFile, StreamingScorer};
use crate::error::PspError;
use serde::{Deserialize, Serialize};
use socialsim::corpus::Corpus;
use socialsim::post::Post;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The journal file name inside a data directory.
const WAL_FILE: &str = "wal.log";
/// The checkpoint subdirectory name.
const CHECKPOINT_DIR: &str = "checkpoints";
/// Published checkpoint directories: `ckpt-<generation>`.
const CHECKPOINT_PREFIX: &str = "ckpt-";
/// In-flight checkpoint directories, swept at recovery: `.tmp-ckpt-<generation>`.
const CHECKPOINT_TMP_PREFIX: &str = ".tmp-ckpt-";
/// How many published checkpoints [`DurableStore::checkpoint`] retains.
const CHECKPOINTS_KEPT: usize = 2;
/// Sentinel for "no checkpoint yet" in the atomic generation cell.
const NO_CHECKPOINT: u64 = u64::MAX;

/// The self-describing half of a checkpoint: what the data files must hash
/// and count to, so recovery validates before parsing a byte of payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CheckpointManifest {
    /// Engine generation the checkpoint captures.
    generation: u64,
    /// Posts in `corpus.json`.
    posts: u64,
    /// Byte length of `corpus.json`.
    corpus_bytes: u64,
    /// CRC-32 (IEEE) of `corpus.json`.
    corpus_crc32: u32,
    /// Byte length of `signals.json`.
    signals_bytes: u64,
    /// CRC-32 (IEEE) of `signals.json`.
    signals_crc32: u32,
}

/// What startup recovery found and did — surfaced by the daemon's
/// `--recover` logging and asserted by the fault-injection tests.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Generation of the checkpoint that was loaded (`None` = fresh start,
    /// no valid checkpoint existed).
    pub checkpoint_generation: Option<u64>,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_records: usize,
    /// Posts those records carried.
    pub replayed_posts: usize,
    /// Bytes of torn/corrupt WAL tail that were truncated away.
    pub truncated_wal_bytes: u64,
    /// Whether the data directory held no prior state at all.
    pub fresh_start: bool,
}

/// Durability counters for `Status` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Records currently in the journal (since the last compaction).
    pub wal_records: u64,
    /// Bytes currently in the journal.
    pub wal_bytes: u64,
    /// Generation of the newest published checkpoint, if any.
    pub last_checkpoint_generation: Option<u64>,
    /// Whether this store restored prior state at startup (checkpoint
    /// loaded or WAL records replayed).
    pub recovered_at_start: bool,
}

/// The durability plane of one data directory: the WAL writer, the
/// checkpoint publisher and the recovery bookkeeping.  Shared `Arc`'d
/// between the service state and embedding callers.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    faults: FaultFs,
    wal: Mutex<WalWriter>,
    /// Newest published checkpoint generation ([`NO_CHECKPOINT`] = none).
    last_checkpoint: AtomicU64,
    recovered_at_start: AtomicBool,
}

impl DurableStore {
    /// Opens (or initialises) the data directory at `dir` and reconstructs
    /// the engine it last served:
    ///
    /// 1. sweep in-flight checkpoint temp directories (crash residue);
    /// 2. load the newest checkpoint that passes full validation, handing
    ///    its corpus (and best-effort signal cache) to `build`; when none
    ///    exists, start from `seed()` and immediately publish generation
    ///    zero as the initial checkpoint;
    /// 3. replay the WAL's valid prefix — every record with a generation
    ///    beyond the checkpoint floor, in file order — and truncate the torn
    ///    tail.
    ///
    /// Returns the store, the reconstructed engine and a [`RecoveryReport`].
    ///
    /// # Errors
    ///
    /// [`PspError::Durability`] on filesystem failures.  Corruption is never
    /// an error: damaged checkpoints are skipped (older ones are fallbacks)
    /// and damaged WAL tails are truncated.
    pub fn recover<E: StreamingScorer>(
        dir: &Path,
        faults: FaultFs,
        seed: impl FnOnce() -> E,
        build: impl FnOnce(Corpus, Option<SignalCacheFile>) -> E,
    ) -> Result<(Arc<Self>, E, RecoveryReport), PspError> {
        let checkpoints = dir.join(CHECKPOINT_DIR);
        std::fs::create_dir_all(&checkpoints).map_err(|err| PspError::Durability {
            detail: format!("create {}: {err}", checkpoints.display()),
        })?;
        sweep_tmp_checkpoints(&checkpoints);

        let loaded = newest_valid_checkpoint(&checkpoints);
        let fresh_start = loaded.is_none() && !dir.join(WAL_FILE).exists();
        let (mut engine, checkpoint_generation) = match loaded {
            Some((generation, corpus, signals)) => {
                let mut engine = build(corpus, signals);
                engine.restore_generation(generation);
                (engine, Some(generation))
            }
            None => (seed(), None),
        };

        // Replay the journal's valid prefix beyond the checkpoint floor.
        let wal_path = dir.join(WAL_FILE);
        let scan = scan_wal(&wal_path)?;
        let floor = checkpoint_generation.unwrap_or(0);
        let mut replayed_records = 0;
        let mut replayed_posts = 0;
        for record in &scan.records {
            if record.generation <= floor && checkpoint_generation.is_some() {
                continue; // Already inside the checkpoint (compaction lag).
            }
            replayed_records += 1;
            replayed_posts += record.posts.len();
            engine.ingest_batch(record.posts.clone());
            // Stamp the journaled generation, so recovered responses match
            // the pre-crash service even if the journal has gaps.
            engine.restore_generation(record.generation);
        }
        let truncated_wal_bytes = scan.truncated_bytes();
        let wal = WalWriter::open(&wal_path, &scan, faults.clone())?;

        let store = Arc::new(Self {
            dir: dir.to_path_buf(),
            faults,
            wal: Mutex::new(wal),
            last_checkpoint: AtomicU64::new(checkpoint_generation.unwrap_or(NO_CHECKPOINT)),
            recovered_at_start: AtomicBool::new(
                checkpoint_generation.is_some() || replayed_records > 0,
            ),
        });
        if checkpoint_generation.is_none() {
            // First start on this directory: make the seed corpus durable
            // immediately, so from here on the directory alone reconstructs
            // the engine.
            store.checkpoint(&engine)?;
        }
        let report = RecoveryReport {
            checkpoint_generation,
            replayed_records,
            replayed_posts,
            truncated_wal_bytes,
            fresh_start,
        };
        Ok((store, engine, report))
    }

    /// Appends one ingest batch to the journal and fsyncs — the write-ahead
    /// hook [`SnapshotPublisher::ingest_logged`](super::snapshot::SnapshotPublisher::ingest_logged)
    /// calls before publishing `generation`.
    ///
    /// # Errors
    ///
    /// [`PspError::Durability`] when the append could not be made durable;
    /// the caller must not publish the batch.
    pub fn log_ingest(&self, posts: &[Post], generation: u64) -> Result<(), PspError> {
        let record = WalRecord {
            generation,
            posts: posts.to_vec(),
        };
        self.wal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .append(&record)
    }

    /// Publishes an atomic checkpoint of `engine`: corpus + signal cache +
    /// manifest written into a temp directory, fsync'd, renamed into place;
    /// then the journal is compacted past the checkpointed generation and
    /// all but the newest two checkpoints are pruned.
    ///
    /// Idempotent per generation: if this generation (or a newer one) is
    /// already checkpointed, nothing is written.
    ///
    /// Returns `(generation, posts, path)` of the covering checkpoint.
    ///
    /// # Errors
    ///
    /// [`PspError::Durability`] on filesystem failures (including injected
    /// faults).  On error nothing was published: the previous checkpoints
    /// and the journal are untouched.
    pub fn checkpoint<E: StreamingScorer>(
        &self,
        engine: &E,
    ) -> Result<(u64, usize, PathBuf), PspError> {
        let generation = engine.generation();
        let last = self.last_checkpoint.load(Ordering::SeqCst);
        if last != NO_CHECKPOINT && last >= generation {
            let path = self
                .dir
                .join(CHECKPOINT_DIR)
                .join(format!("{CHECKPOINT_PREFIX}{last}"));
            return Ok((last, engine.post_count(), path));
        }

        let corpus = engine.snapshot_corpus();
        let posts = corpus.len();
        let corpus_json = serde_json::to_string(&corpus).map_err(|err| PspError::Durability {
            detail: format!("serialise checkpoint corpus: {err:?}"),
        })?;
        let signals_json = serde_json::to_string(&engine.export_signal_cache()).map_err(|err| {
            PspError::Durability {
                detail: format!("serialise checkpoint signal cache: {err:?}"),
            }
        })?;
        let manifest = CheckpointManifest {
            generation,
            posts: posts as u64,
            corpus_bytes: corpus_json.len() as u64,
            corpus_crc32: crc32(corpus_json.as_bytes()),
            signals_bytes: signals_json.len() as u64,
            signals_crc32: crc32(signals_json.as_bytes()),
        };
        let manifest_json =
            serde_json::to_string(&manifest).map_err(|err| PspError::Durability {
                detail: format!("serialise checkpoint manifest: {err:?}"),
            })?;

        let checkpoints = self.dir.join(CHECKPOINT_DIR);
        let tmp = checkpoints.join(format!("{CHECKPOINT_TMP_PREFIX}{generation}"));
        let target = checkpoints.join(format!("{CHECKPOINT_PREFIX}{generation}"));
        let write_all = || -> Result<(), PspError> {
            std::fs::create_dir_all(&tmp).map_err(|err| PspError::Durability {
                detail: format!("create {}: {err}", tmp.display()),
            })?;
            for (name, content) in [
                ("corpus.json", corpus_json.as_str()),
                ("signals.json", signals_json.as_str()),
                ("manifest.json", manifest_json.as_str()),
            ] {
                let path = tmp.join(name);
                let mut file = File::create(&path).map_err(|err| PspError::Durability {
                    detail: format!("create {}: {err}", path.display()),
                })?;
                file.write_all(content.as_bytes())
                    .map_err(|err| PspError::Durability {
                        detail: format!("write {}: {err}", path.display()),
                    })?;
                self.faults.sync(&file, name)?;
            }
            Ok(())
        };
        if let Err(err) = write_all() {
            let _ = std::fs::remove_dir_all(&tmp);
            return Err(err);
        }
        if let Err(err) = self.faults.rename(&tmp, &target) {
            let _ = std::fs::remove_dir_all(&tmp);
            return Err(err);
        }
        // Make the rename itself durable (directory fsync; best-effort on
        // filesystems that refuse to open directories).
        if let Ok(dir) = File::open(&checkpoints) {
            let _ = dir.sync_all();
        }
        self.last_checkpoint.store(generation, Ordering::SeqCst);

        // The journal prefix up to this generation is now redundant; a
        // failed compaction is not a failed checkpoint (the WAL just stays
        // longer until the next one).
        let _ = self
            .wal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .compact(generation);
        prune_checkpoints(&checkpoints, CHECKPOINTS_KEPT);
        Ok((generation, posts, target))
    }

    /// Durability counters, observed now.
    #[must_use]
    pub fn stats(&self) -> DurabilityStats {
        let wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        let last = self.last_checkpoint.load(Ordering::SeqCst);
        DurabilityStats {
            wal_records: wal.records(),
            wal_bytes: wal.bytes(),
            last_checkpoint_generation: (last != NO_CHECKPOINT).then_some(last),
            recovered_at_start: self.recovered_at_start.load(Ordering::SeqCst),
        }
    }

    /// The data directory this store owns.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Removes in-flight checkpoint temp directories (crash residue) —
/// best-effort, recovery proceeds regardless.
fn sweep_tmp_checkpoints(checkpoints: &Path) {
    let Ok(entries) = std::fs::read_dir(checkpoints) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        if name.to_string_lossy().starts_with(CHECKPOINT_TMP_PREFIX) {
            let _ = std::fs::remove_dir_all(entry.path());
        }
    }
}

/// Generations of the published checkpoint directories, unvalidated,
/// descending.
fn checkpoint_generations(checkpoints: &Path) -> Vec<u64> {
    let Ok(entries) = std::fs::read_dir(checkpoints) else {
        return Vec::new();
    };
    let mut generations: Vec<u64> = entries
        .flatten()
        .filter_map(|entry| {
            entry
                .file_name()
                .to_string_lossy()
                .strip_prefix(CHECKPOINT_PREFIX)?
                .parse()
                .ok()
        })
        .collect();
    generations.sort_unstable_by(|a, b| b.cmp(a));
    generations
}

/// Loads the newest checkpoint that passes full validation (manifest parse,
/// byte counts, CRC32s, corpus parse, post count).  Invalid ones are
/// skipped, never deleted — they are evidence.
fn newest_valid_checkpoint(checkpoints: &Path) -> Option<(u64, Corpus, Option<SignalCacheFile>)> {
    for generation in checkpoint_generations(checkpoints) {
        let dir = checkpoints.join(format!("{CHECKPOINT_PREFIX}{generation}"));
        if let Some(loaded) = load_checkpoint(&dir, generation) {
            return Some(loaded);
        }
    }
    None
}

/// Validates and loads one checkpoint directory; `None` on any mismatch.
fn load_checkpoint(dir: &Path, generation: u64) -> Option<(u64, Corpus, Option<SignalCacheFile>)> {
    let manifest_text = std::fs::read_to_string(dir.join("manifest.json")).ok()?;
    let manifest: CheckpointManifest = serde_json::from_str(&manifest_text).ok()?;
    if manifest.generation != generation {
        return None;
    }
    let corpus_bytes = std::fs::read(dir.join("corpus.json")).ok()?;
    if corpus_bytes.len() as u64 != manifest.corpus_bytes
        || crc32(&corpus_bytes) != manifest.corpus_crc32
    {
        return None;
    }
    let mut corpus: Corpus = serde_json::from_str(std::str::from_utf8(&corpus_bytes).ok()?).ok()?;
    if corpus.len() as u64 != manifest.posts {
        return None;
    }
    corpus.rebuild_index();
    // The signal cache is an optimisation, not state: a damaged one costs
    // re-mining, never correctness, so it degrades to `None` instead of
    // invalidating the checkpoint.
    let signals = std::fs::read(dir.join("signals.json"))
        .ok()
        .filter(|bytes| {
            bytes.len() as u64 == manifest.signals_bytes && crc32(bytes) == manifest.signals_crc32
        })
        .and_then(|bytes| serde_json::from_str(std::str::from_utf8(&bytes).ok()?).ok());
    Some((generation, corpus, signals))
}

/// Removes published checkpoints beyond the newest `keep` — best-effort.
fn prune_checkpoints(checkpoints: &Path, keep: usize) {
    for generation in checkpoint_generations(checkpoints).into_iter().skip(keep) {
        let _ =
            std::fs::remove_dir_all(checkpoints.join(format!("{CHECKPOINT_PREFIX}{generation}")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PspConfig;
    use crate::engine::LiveEngine;
    use crate::keyword_db::KeywordDatabase;
    use socialsim::scenario;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("psp_durability_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn seed_engine() -> LiveEngine {
        LiveEngine::new(scenario::excavator_europe(7))
    }

    fn build_engine(corpus: Corpus, signals: Option<SignalCacheFile>) -> LiveEngine {
        let engine = LiveEngine::new(corpus);
        if let Some(cache) = signals {
            let _ = engine.load_signal_cache(&cache);
        }
        engine
    }

    fn sai(engine: &LiveEngine) -> crate::sai::SaiList {
        engine.sai_list(
            &KeywordDatabase::excavator_seed(),
            &PspConfig::excavator_europe(),
        )
    }

    #[test]
    fn first_start_checkpoints_the_seed_and_recovers_it_bit_identically() {
        let dir = temp_dir("first_start");
        let (_, engine, report) =
            DurableStore::recover(&dir, FaultFs::none(), seed_engine, build_engine).unwrap();
        assert!(report.fresh_start);
        assert_eq!(report.checkpoint_generation, None);
        assert_eq!(report.replayed_records, 0);

        // A second recovery loads the initial checkpoint instead of seeding.
        let (store, recovered, report) = DurableStore::recover(
            &dir,
            FaultFs::none(),
            || panic!("seed must not be called when a checkpoint exists"),
            build_engine,
        )
        .unwrap();
        assert!(!report.fresh_start);
        assert_eq!(report.checkpoint_generation, Some(0));
        assert_eq!(recovered.generation(), engine.generation());
        assert_eq!(sai(&recovered), sai(&engine));
        assert!(store.stats().recovered_at_start);
    }

    #[test]
    fn logged_ingests_replay_after_a_simulated_crash() {
        let dir = temp_dir("replay");
        let batch8 = scenario::excavator_europe(8).posts().to_vec();
        let batch9 = scenario::excavator_europe(9).posts().to_vec();

        let (store, mut engine, _) =
            DurableStore::recover(&dir, FaultFs::none(), seed_engine, build_engine).unwrap();
        store.log_ingest(&batch8, 1).unwrap();
        engine.ingest(batch8.clone());
        store.log_ingest(&batch9, 2).unwrap();
        engine.ingest(batch9.clone());
        drop(store); // "crash": no checkpoint since the ingests

        let (store, recovered, report) = DurableStore::recover(
            &dir,
            FaultFs::none(),
            || panic!("must recover from disk"),
            build_engine,
        )
        .unwrap();
        assert_eq!(report.checkpoint_generation, Some(0));
        assert_eq!(report.replayed_records, 2);
        assert_eq!(report.replayed_posts, batch8.len() + batch9.len());
        assert_eq!(recovered.generation(), 2);
        assert_eq!(recovered.post_count(), engine.post_count());
        assert_eq!(sai(&recovered), sai(&engine));
        assert_eq!(store.stats().wal_records, 2);
    }

    #[test]
    fn checkpoints_compact_the_wal_and_are_idempotent() {
        let dir = temp_dir("compacting");
        let (store, mut engine, _) =
            DurableStore::recover(&dir, FaultFs::none(), seed_engine, build_engine).unwrap();
        let batch = scenario::excavator_europe(8).posts().to_vec();
        store.log_ingest(&batch, 1).unwrap();
        engine.ingest(batch);
        assert_eq!(store.stats().wal_records, 1);

        let (generation, posts, path) = store.checkpoint(&engine).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(posts, engine.post_count());
        assert!(path.ends_with("ckpt-1"));
        let stats = store.stats();
        assert_eq!(
            stats.wal_records, 0,
            "journal compacted past the checkpoint"
        );
        assert_eq!(stats.last_checkpoint_generation, Some(1));

        // Same generation again: nothing new is written.
        let again = store.checkpoint(&engine).unwrap();
        assert_eq!(again.0, 1);

        // Recovery prefers the checkpoint; nothing left to replay.
        drop(store);
        let (_, recovered, report) = DurableStore::recover(
            &dir,
            FaultFs::none(),
            || panic!("must recover from disk"),
            build_engine,
        )
        .unwrap();
        assert_eq!(report.checkpoint_generation, Some(1));
        assert_eq!(report.replayed_records, 0);
        assert_eq!(recovered.generation(), engine.generation());
        assert_eq!(sai(&recovered), sai(&engine));
    }

    #[test]
    fn a_failed_checkpoint_rename_leaves_prior_state_authoritative() {
        let dir = temp_dir("ckpt_rename_fault");
        let faults = FaultFs::none();
        let (store, mut engine, _) =
            DurableStore::recover(&dir, faults.clone(), seed_engine, build_engine).unwrap();
        let batch = scenario::excavator_europe(8).posts().to_vec();
        store.log_ingest(&batch, 1).unwrap();
        engine.ingest(batch);

        faults.fail_rename(0);
        assert_eq!(store.checkpoint(&engine).unwrap_err().kind(), "durability");
        // The WAL still holds the batch and no tmp residue survives.
        assert_eq!(store.stats().wal_records, 1);
        assert_eq!(store.stats().last_checkpoint_generation, Some(0));
        drop(store);
        let (_, recovered, report) = DurableStore::recover(
            &dir,
            FaultFs::none(),
            || panic!("must recover from disk"),
            build_engine,
        )
        .unwrap();
        assert_eq!(report.checkpoint_generation, Some(0));
        assert_eq!(report.replayed_records, 1);
        assert_eq!(recovered.generation(), 1);
        assert_eq!(sai(&recovered), sai(&engine));
    }

    #[test]
    fn a_corrupted_newest_checkpoint_falls_back_to_the_previous_one() {
        let dir = temp_dir("ckpt_fallback");
        let (store, mut engine, _) =
            DurableStore::recover(&dir, FaultFs::none(), seed_engine, build_engine).unwrap();
        let batch = scenario::excavator_europe(8).posts().to_vec();
        store.log_ingest(&batch, 1).unwrap();
        engine.ingest(batch.clone());
        store.checkpoint(&engine).unwrap();

        // Damage the newest checkpoint's corpus payload.
        let corpus_path = dir.join("checkpoints/ckpt-1/corpus.json");
        let mut bytes = std::fs::read(&corpus_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&corpus_path, &bytes).unwrap();

        drop(store);
        // ckpt-1 fails CRC validation; ckpt-0 (the initial one) still loads,
        // and the WAL no longer holds gen-1 (compacted) — recovery restores
        // the gen-0 state rather than trusting damaged bytes.
        let (_, recovered, report) = DurableStore::recover(
            &dir,
            FaultFs::none(),
            || panic!("must recover from disk"),
            build_engine,
        )
        .unwrap();
        assert_eq!(report.checkpoint_generation, Some(0));
        assert_eq!(recovered.generation(), 0);
        let seeded = seed_engine();
        assert_eq!(recovered.post_count(), seeded.post_count());
        assert_eq!(sai(&recovered), sai(&seeded));
    }

    #[test]
    fn old_checkpoints_are_pruned_to_the_retention_limit() {
        let dir = temp_dir("prune");
        let (store, mut engine, _) =
            DurableStore::recover(&dir, FaultFs::none(), seed_engine, build_engine).unwrap();
        for seed in 8..12 {
            let batch = scenario::excavator_europe(seed).posts().to_vec();
            let generation = engine.generation() + 1;
            store.log_ingest(&batch, generation).unwrap();
            engine.ingest(batch);
            store.checkpoint(&engine).unwrap();
        }
        let generations = checkpoint_generations(&dir.join(CHECKPOINT_DIR));
        assert_eq!(generations, vec![4, 3]);
    }
}
