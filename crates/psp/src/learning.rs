//! Keyword auto-learning (paper Figure 7, block 5).
//!
//! "While computing the SAI list, the NLP triggers a component that facilitates an
//! auto-learning strategy to incorporate new keywords into the database for future
//! runs.  This ensures no hashtag deficiencies, which may cause partial and
//! incomplete findings."
//!
//! The implementation mines hashtag co-occurrence: a hashtag that appears together
//! with a known attack hashtag in at least `min_support` posts is promoted into the
//! database, inheriting the scenario, vector and origin of the seed it co-occurred
//! with most often.

use crate::keyword_db::{KeywordDatabase, KeywordProfile};
use socialsim::corpus::Corpus;
use textmine::cooccurrence::CooccurrenceMatrix;

/// The result of one learning pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearningOutcome {
    /// The keywords that were added, with the seed keyword they were learned from.
    pub learned: Vec<(String, String)>,
}

impl LearningOutcome {
    /// Number of newly learned keywords.
    #[must_use]
    pub fn count(&self) -> usize {
        self.learned.len()
    }
}

/// Runs one auto-learning pass over the corpus and extends the database in place.
///
/// Generic, clearly non-attack tags (pure filler like `deal` or `sale`) are kept out
/// through a small stop list; everything else is judged purely on co-occurrence
/// support, exactly like the paper's prototype.
pub fn learn_keywords(
    db: &mut KeywordDatabase,
    corpus: &Corpus,
    min_support: usize,
) -> LearningOutcome {
    const TAG_STOPLIST: [&str; 6] = ["deal", "sale", "offer", "fyp", "viral", "follow"];

    let mut matrix = CooccurrenceMatrix::new();
    for post in corpus.iter() {
        let tags: Vec<String> = post
            .hashtags()
            .iter()
            .map(|h| h.as_str().to_string())
            .collect();
        if tags.len() >= 2 {
            matrix.add_document(tags);
        }
    }

    let mut learned = Vec::new();
    let seeds: Vec<KeywordProfile> = db.iter().cloned().collect();
    for seed in &seeds {
        let related = matrix.related_terms(std::slice::from_ref(&seed.keyword), min_support);
        for (candidate, _support) in related {
            if db.contains(&candidate) || TAG_STOPLIST.contains(&candidate.as_str()) {
                continue;
            }
            db.insert(KeywordProfile::learned_from(&candidate, seed));
            learned.push((candidate, seed.keyword.clone()));
        }
    }
    LearningOutcome { learned }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::AttackOrigin;
    use socialsim::engagement::Engagement;
    use socialsim::post::{Post, Region, TargetApplication};
    use socialsim::time::SimDate;
    use socialsim::user::User;
    use vehicle::attack_surface::AttackVector;

    fn post_with_tags(id: u64, text: &str) -> Post {
        Post::new(
            id,
            User::new("u", 100, 24),
            text,
            vec![],
            SimDate::new(2022, 5, 1),
            Region::Europe,
            TargetApplication::Excavator,
            Engagement::new(100, 10, 2, 1),
        )
    }

    fn seeded_db() -> KeywordDatabase {
        let mut db = KeywordDatabase::new();
        db.insert(KeywordProfile::manual(
            "dpfdelete",
            "dpf-tampering",
            AttackVector::Local,
            AttackOrigin::Insider,
        ));
        db
    }

    #[test]
    fn frequently_cooccurring_tags_are_learned() {
        let corpus = Corpus::from_posts(vec![
            post_with_tags(1, "#dpfdelete done with the #flashtool"),
            post_with_tags(2, "#dpfdelete via #flashtool worked"),
            post_with_tags(3, "another #dpfdelete with #flashtool"),
            post_with_tags(4, "#dpfdelete but no other tag here at all"),
        ]);
        let mut db = seeded_db();
        let outcome = learn_keywords(&mut db, &corpus, 3);
        assert_eq!(outcome.count(), 1);
        assert!(db.contains("flashtool"));
        let learned = db.profile("flashtool").unwrap();
        assert!(learned.learned);
        assert_eq!(learned.scenario, "dpf-tampering");
        assert_eq!(learned.vector, AttackVector::Local);
    }

    #[test]
    fn low_support_tags_are_not_learned() {
        let corpus = Corpus::from_posts(vec![
            post_with_tags(1, "#dpfdelete with a #oneoff tag"),
            post_with_tags(2, "#dpfdelete alone"),
        ]);
        let mut db = seeded_db();
        let outcome = learn_keywords(&mut db, &corpus, 3);
        assert_eq!(outcome.count(), 0);
        assert!(!db.contains("oneoff"));
    }

    #[test]
    fn stoplisted_tags_are_ignored() {
        let corpus = Corpus::from_posts(vec![
            post_with_tags(1, "#dpfdelete #sale"),
            post_with_tags(2, "#dpfdelete #sale"),
            post_with_tags(3, "#dpfdelete #sale"),
        ]);
        let mut db = seeded_db();
        learn_keywords(&mut db, &corpus, 2);
        assert!(!db.contains("sale"));
    }

    #[test]
    fn known_keywords_are_not_relearned() {
        let corpus = Corpus::from_posts(vec![
            post_with_tags(1, "#dpfdelete #dpfoff"),
            post_with_tags(2, "#dpfdelete #dpfoff"),
            post_with_tags(3, "#dpfdelete #dpfoff"),
        ]);
        let mut db = seeded_db();
        db.insert(KeywordProfile::manual(
            "dpfoff",
            "dpf-tampering",
            AttackVector::Local,
            AttackOrigin::Insider,
        ));
        let before = db.len();
        let outcome = learn_keywords(&mut db, &corpus, 2);
        assert_eq!(outcome.count(), 0);
        assert_eq!(db.len(), before);
    }

    #[test]
    fn learning_on_the_synthetic_scene_grows_the_database() {
        let corpus = socialsim::scenario::excavator_europe(42);
        let mut db = KeywordDatabase::excavator_seed();
        let before = db.len();
        let outcome = learn_keywords(&mut db, &corpus, 5);
        assert_eq!(db.len(), before + outcome.count());
        // The secondary hashtags of the scene (e.g. "dpfoff" is seeded, but
        // "powerboost" already exists too) may or may not add entries depending on
        // co-occurrence; the invariant is simply consistency between outcome and db.
        assert_eq!(db.learned_count(), outcome.count());
    }
}
