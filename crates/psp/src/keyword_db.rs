//! The attack-keyword database (paper Figure 7, blocks 3–5).
//!
//! The PSP proof of concept starts from a manually populated list of hashtags
//! (#dpfdelete, #egrremoval, #egrdelete, #egroff, #dieselpower, #chiptuning) and
//! grows it across runs through auto-learning.  Every keyword carries the domain
//! knowledge the SAI and weight-generation stages need: which threat scenario it
//! belongs to, which attack vector the discussed technique uses, and whether the
//! attack is an insider or outsider one.

use crate::classify::AttackOrigin;
use serde::{Deserialize, Serialize};
use socialsim::hashtag::Hashtag;
use std::collections::BTreeMap;
use vehicle::attack_surface::AttackVector;

/// The profile attached to one keyword / hashtag.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeywordProfile {
    /// The normalised keyword (hashtag without `#`).
    pub keyword: String,
    /// The threat-scenario identifier the keyword provides evidence for
    /// (e.g. `"ecm-reprogramming"`, `"dpf-tampering"`).
    pub scenario: String,
    /// The attack vector of the technique the keyword describes.
    pub vector: AttackVector,
    /// Whether the technique is an insider or outsider attack.
    pub origin: AttackOrigin,
    /// Whether the keyword was learned automatically (as opposed to manually
    /// seeded).
    pub learned: bool,
}

impl KeywordProfile {
    /// Creates a manually seeded profile.
    #[must_use]
    pub fn manual(
        keyword: impl Into<String>,
        scenario: impl Into<String>,
        vector: AttackVector,
        origin: AttackOrigin,
    ) -> Self {
        Self {
            keyword: Hashtag::new(&keyword.into()).as_str().to_string(),
            scenario: scenario.into(),
            vector,
            origin,
            learned: false,
        }
    }

    /// Creates a learned profile (inherits scenario/vector/origin from the seed it
    /// co-occurred with).
    #[must_use]
    pub fn learned_from(keyword: impl Into<String>, seed: &KeywordProfile) -> Self {
        Self {
            keyword: Hashtag::new(&keyword.into()).as_str().to_string(),
            scenario: seed.scenario.clone(),
            vector: seed.vector,
            origin: seed.origin,
            learned: true,
        }
    }
}

/// The keyword database.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KeywordDatabase {
    entries: BTreeMap<String, KeywordProfile>,
}

impl KeywordDatabase {
    /// Creates an empty database.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The manual seed for the passenger-car scene, covering the ECM-reprogramming
    /// scenario (physical bench route vs local OBD route), the emission-defeat
    /// scenario and two outsider scenarios (relay theft, telematics exploitation).
    #[must_use]
    pub fn passenger_car_seed() -> Self {
        let mut db = Self::new();
        // ECM reprogramming — physical (bench / boot-mode) route.
        for tag in ["benchflash", "bootmode", "ecuclone"] {
            db.insert(KeywordProfile::manual(
                tag,
                "ecm-reprogramming",
                AttackVector::Physical,
                AttackOrigin::Insider,
            ));
        }
        // ECM reprogramming — local (OBD) route.
        for tag in ["chiptuning", "obdtuning", "stage1"] {
            db.insert(KeywordProfile::manual(
                tag,
                "ecm-reprogramming",
                AttackVector::Local,
                AttackOrigin::Insider,
            ));
        }
        // Emission defeat on the after-treatment controller (local via OBD tool).
        for tag in [
            "dpfdelete",
            "egrdelete",
            "egroff",
            "egrremoval",
            "dieselpower",
        ] {
            db.insert(KeywordProfile::manual(
                tag,
                "emission-defeat",
                AttackVector::Local,
                AttackOrigin::Insider,
            ));
        }
        // Outsider scenarios.
        for tag in ["relayattack", "keylesstheft"] {
            db.insert(KeywordProfile::manual(
                tag,
                "vehicle-theft",
                AttackVector::Adjacent,
                AttackOrigin::Outsider,
            ));
        }
        for tag in ["carhacking", "telematicshack"] {
            db.insert(KeywordProfile::manual(
                tag,
                "remote-exploitation",
                AttackVector::Network,
                AttackOrigin::Outsider,
            ));
        }
        db
    }

    /// The manual seed for the excavator scene of the financial case study.
    #[must_use]
    pub fn excavator_seed() -> Self {
        let mut db = Self::new();
        let insider_local: [(&str, &str); 10] = [
            ("dpfdelete", "dpf-tampering"),
            ("dpfoff", "dpf-tampering"),
            ("egrdelete", "egr-tampering"),
            ("egrremoval", "egr-tampering"),
            ("adblueemulator", "scr-emulation"),
            ("scroff", "scr-emulation"),
            ("chiptuning", "power-tuning"),
            ("powerboost", "power-tuning"),
            ("speedlimiteroff", "limiter-removal"),
            ("hourmeterrollback", "hour-meter-fraud"),
        ];
        for (tag, scenario) in insider_local {
            db.insert(KeywordProfile::manual(
                tag,
                scenario,
                AttackVector::Local,
                AttackOrigin::Insider,
            ));
        }
        db
    }

    /// Inserts (or replaces) a profile.
    pub fn insert(&mut self, profile: KeywordProfile) {
        self.entries.insert(profile.keyword.clone(), profile);
    }

    /// Number of keywords.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a keyword (normalised).
    #[must_use]
    pub fn profile(&self, keyword: &str) -> Option<&KeywordProfile> {
        self.entries.get(Hashtag::new(keyword).as_str())
    }

    /// Whether a keyword is present.
    #[must_use]
    pub fn contains(&self, keyword: &str) -> bool {
        self.profile(keyword).is_some()
    }

    /// All profiles in keyword order.
    pub fn iter(&self) -> impl Iterator<Item = &KeywordProfile> {
        self.entries.values()
    }

    /// All keywords (normalised).
    #[must_use]
    pub fn keywords(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Distinct scenario identifiers present in the database.
    #[must_use]
    pub fn scenarios(&self) -> Vec<String> {
        let mut out: Vec<String> = self.entries.values().map(|p| p.scenario.clone()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Profiles attached to one scenario.
    #[must_use]
    pub fn profiles_for_scenario(&self, scenario: &str) -> Vec<&KeywordProfile> {
        self.entries
            .values()
            .filter(|p| p.scenario == scenario)
            .collect()
    }

    /// Number of learned (non-seed) keywords.
    #[must_use]
    pub fn learned_count(&self) -> usize {
        self.entries.values().filter(|p| p.learned).count()
    }
}

impl Extend<KeywordProfile> for KeywordDatabase {
    fn extend<T: IntoIterator<Item = KeywordProfile>>(&mut self, iter: T) {
        for profile in iter {
            self.insert(profile);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passenger_seed_covers_both_reprogramming_routes() {
        let db = KeywordDatabase::passenger_car_seed();
        let ecm = db.profiles_for_scenario("ecm-reprogramming");
        let vectors: std::collections::BTreeSet<_> = ecm.iter().map(|p| p.vector).collect();
        assert!(vectors.contains(&AttackVector::Physical));
        assert!(vectors.contains(&AttackVector::Local));
        assert!(ecm.iter().all(|p| p.origin == AttackOrigin::Insider));
    }

    #[test]
    fn paper_seed_hashtags_are_present() {
        let db = KeywordDatabase::passenger_car_seed();
        for tag in socialsim::scenario::seed_hashtags() {
            assert!(db.contains(tag), "{tag} missing from seed");
        }
    }

    #[test]
    fn lookup_is_normalised() {
        let db = KeywordDatabase::passenger_car_seed();
        assert!(db.contains("#ChipTuning"));
        assert!(db.contains("chiptuning"));
        assert!(!db.contains("notatag"));
    }

    #[test]
    fn excavator_seed_is_all_insider_local() {
        let db = KeywordDatabase::excavator_seed();
        assert!(!db.is_empty());
        for p in db.iter() {
            assert_eq!(p.origin, AttackOrigin::Insider);
            assert_eq!(p.vector, AttackVector::Local);
            assert!(!p.learned);
        }
    }

    #[test]
    fn learned_profiles_inherit_from_seed() {
        let db = KeywordDatabase::passenger_car_seed();
        let seed = db.profile("benchflash").unwrap().clone();
        let learned = KeywordProfile::learned_from("#BdmFlash", &seed);
        assert_eq!(learned.keyword, "bdmflash");
        assert_eq!(learned.scenario, "ecm-reprogramming");
        assert_eq!(learned.vector, AttackVector::Physical);
        assert!(learned.learned);
    }

    #[test]
    fn insert_replaces_and_learned_count_tracks() {
        let mut db = KeywordDatabase::new();
        let seed = KeywordProfile::manual("a", "s", AttackVector::Local, AttackOrigin::Insider);
        db.insert(seed.clone());
        db.insert(KeywordProfile::learned_from("b", &seed));
        assert_eq!(db.len(), 2);
        assert_eq!(db.learned_count(), 1);
        db.insert(KeywordProfile::manual(
            "a",
            "s2",
            AttackVector::Physical,
            AttackOrigin::Insider,
        ));
        assert_eq!(db.len(), 2, "re-insert replaces");
        assert_eq!(db.profile("a").unwrap().scenario, "s2");
    }

    #[test]
    fn scenarios_are_deduplicated_and_sorted() {
        let db = KeywordDatabase::passenger_car_seed();
        let scenarios = db.scenarios();
        assert!(scenarios.contains(&"ecm-reprogramming".to_string()));
        assert!(scenarios.contains(&"vehicle-theft".to_string()));
        let mut sorted = scenarios.clone();
        sorted.sort();
        assert_eq!(scenarios, sorted);
    }

    #[test]
    fn extend_adds_profiles() {
        let mut db = KeywordDatabase::new();
        db.extend(vec![KeywordProfile::manual(
            "x",
            "s",
            AttackVector::Local,
            AttackOrigin::Insider,
        )]);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let db = KeywordDatabase::excavator_seed();
        let json = serde_json::to_string(&db).unwrap();
        assert_eq!(db, serde_json::from_str::<KeywordDatabase>(&json).unwrap());
    }
}
