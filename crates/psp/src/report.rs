//! The serialisable PSP report bundling the run artefacts.
//!
//! A product-security team consuming PSP does not want to re-run the pipeline to
//! read its conclusions; the report gathers the SAI ranking, the generated weight
//! tables, the optional financial assessments and the static-vs-dynamic TARA deltas
//! into one JSON-serialisable document.

use crate::dynamic_tara::DynamicTaraComparison;
use crate::financial::FinancialAssessment;
use crate::workflow::PspOutcome;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The top-level PSP report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PspReport {
    /// A caller-chosen title (e.g. "ECM reprogramming — EU passenger cars").
    pub title: String,
    /// The workflow outcome (SAI list, tables, learned keywords).
    pub outcome: PspOutcome,
    /// Financial assessments, one per analysed scenario.
    pub financial: Vec<FinancialAssessment>,
    /// Optional static-vs-dynamic TARA comparison.
    pub tara_comparison: Option<DynamicTaraComparison>,
}

impl PspReport {
    /// Creates a report from a workflow outcome.
    #[must_use]
    pub fn new(title: impl Into<String>, outcome: PspOutcome) -> Self {
        Self {
            title: title.into(),
            outcome,
            financial: Vec::new(),
            tara_comparison: None,
        }
    }

    /// Attaches a financial assessment.
    #[must_use]
    pub fn with_financial(mut self, assessment: FinancialAssessment) -> Self {
        self.financial.push(assessment);
        self
    }

    /// Attaches a TARA comparison.
    #[must_use]
    pub fn with_tara_comparison(mut self, comparison: DynamicTaraComparison) -> Self {
        self.tara_comparison = Some(comparison);
        self
    }

    /// Serialises the report to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error if serialisation fails (it cannot
    /// for the types involved, but the signature keeps the caller honest).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// A short plain-text executive summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("PSP report: {}\n", self.title));
        out.push_str(&format!(
            "  SAI entries: {} ({} insider, {} outsider)\n",
            self.outcome.sai.len(),
            self.outcome.sai.insider_entries().len(),
            self.outcome.sai.outsider_entries().len()
        ));
        if let Some(top) = self.outcome.sai.top() {
            out.push_str(&format!(
                "  top attack topic: {} (scenario {}, probability {:.1}%)\n",
                top.keyword,
                top.scenario,
                top.probability * 100.0
            ));
        }
        out.push_str(&format!(
            "  learned keywords this run: {}\n",
            self.outcome.learned_count()
        ));
        for assessment in &self.financial {
            out.push_str(&format!(
                "  financial [{}]: MV = {:.0} EUR/yr, investment bound = {:.0} EUR, rating = {}\n",
                assessment.scenario,
                assessment.market_value,
                assessment.investment_bound,
                assessment.rating
            ));
        }
        if let Some(cmp) = &self.tara_comparison {
            out.push_str(&format!(
                "  TARA: {} of {} threats re-rated by the dynamic model\n",
                cmp.changed_count(),
                cmp.deltas.len()
            ));
        }
        out
    }
}

impl fmt::Display for PspReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PspConfig;
    use crate::dynamic_tara::{ecm_reference_tara, DynamicTaraComparison};
    use crate::financial::{FinancialAssessment, FinancialInputs};
    use crate::keyword_db::KeywordDatabase;
    use crate::sai::SaiList;
    use crate::workflow::PspWorkflow;
    use socialsim::scenario;

    fn full_report() -> PspReport {
        let corpus = scenario::excavator_europe(42);
        let config = PspConfig::excavator_europe();
        let db = KeywordDatabase::excavator_seed();
        let outcome = PspWorkflow::new(config.clone(), db.clone()).run(&corpus);
        let sai = SaiList::compute(&corpus, &db, &config);
        let financial = FinancialAssessment::assess(
            "dpf-tampering",
            &sai,
            &market::datasets::excavator_sales_europe(),
            &market::datasets::annual_report(),
            &FinancialInputs::paper_excavator_example(),
        )
        .unwrap();

        let car_outcome = PspWorkflow::new(
            PspConfig::passenger_car_europe(),
            KeywordDatabase::passenger_car_seed(),
        )
        .run(&scenario::passenger_car_europe(42));
        let comparison = DynamicTaraComparison::evaluate(
            &ecm_reference_tara("ECM"),
            &car_outcome,
            "ecm-reprogramming",
        )
        .unwrap();

        PspReport::new("excavator study", outcome)
            .with_financial(financial)
            .with_tara_comparison(comparison)
    }

    #[test]
    fn summary_mentions_the_key_numbers() {
        let report = full_report();
        let summary = report.summary();
        assert!(summary.contains("excavator study"));
        assert!(summary.contains("top attack topic"));
        assert!(summary.contains("financial [dpf-tampering]"));
        assert!(summary.contains("TARA:"));
    }

    #[test]
    fn json_round_trip_preserves_structure() {
        let report = full_report();
        let json = report.to_json().unwrap();
        let back: PspReport = serde_json::from_str(&json).unwrap();
        // Floating-point SAI probabilities may lose their last bit through JSON, so
        // compare the structure and the integer/ordinal content rather than bitwise
        // equality of every f64.
        assert_eq!(back.title, report.title);
        assert_eq!(back.outcome.sai.len(), report.outcome.sai.len());
        assert_eq!(back.outcome.insider_tables, report.outcome.insider_tables);
        assert_eq!(back.outcome.database, report.outcome.database);
        assert_eq!(back.financial.len(), report.financial.len());
        assert_eq!(
            back.financial[0].vehicle_sales,
            report.financial[0].vehicle_sales
        );
        assert_eq!(back.financial[0].rating, report.financial[0].rating);
        assert_eq!(
            back.tara_comparison.as_ref().map(|c| c.deltas.clone()),
            report.tara_comparison.as_ref().map(|c| c.deltas.clone())
        );
    }

    #[test]
    fn display_equals_summary() {
        let report = full_report();
        assert_eq!(report.to_string(), report.summary());
    }

    #[test]
    fn minimal_report_has_no_financial_or_tara_sections() {
        let outcome = PspWorkflow::new(
            PspConfig::excavator_europe(),
            KeywordDatabase::excavator_seed(),
        )
        .run(&scenario::excavator_europe(1));
        let report = PspReport::new("minimal", outcome);
        assert!(report.financial.is_empty());
        assert!(report.tara_comparison.is_none());
        assert!(!report.summary().contains("financial ["));
    }
}
