//! The Social Attraction Index (paper Figure 7, blocks 2, 6 and 7).
//!
//! For every keyword in the attack-keyword database, the PSP NLP component queries
//! the social corpus (target application + region + optional time window),
//! aggregates views, interactions and post counts, adds the text-mined intent
//! score, and produces a sorted SAI list.  Each entry also carries an attack
//! probability estimation: its share of the total SAI mass.

use crate::classify::AttackOrigin;
use crate::config::PspConfig;
use crate::keyword_db::KeywordDatabase;
use serde::{Deserialize, Serialize};
use socialsim::corpus::Corpus;
use socialsim::Post;
use textmine::pipeline::TextPipeline;
use vehicle::attack_surface::AttackVector;

/// One entry of the SAI list: the social evidence attached to one attack keyword.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaiEntry {
    /// The keyword the evidence was collected for.
    pub keyword: String,
    /// The threat-scenario identifier the keyword belongs to.
    pub scenario: String,
    /// The attack vector of the discussed technique.
    pub vector: AttackVector,
    /// Insider or outsider attack.
    pub origin: AttackOrigin,
    /// Number of matching posts.
    pub posts: usize,
    /// Total views over the matching posts.
    pub views: u64,
    /// Total interactions over the matching posts.
    pub interactions: u64,
    /// Summed text-mined intent score.
    pub intent: f64,
    /// Prices mined from the matching posts (EUR).
    pub prices: Vec<f64>,
    /// The Social Attraction Index score.
    pub sai: f64,
    /// The attack-probability estimation: this entry's share of the total SAI mass
    /// (0 when the whole list is empty).
    pub probability: f64,
}

/// The sorted SAI list.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SaiList {
    entries: Vec<SaiEntry>,
}

impl SaiList {
    /// Computes the SAI list for a corpus, keyword database and configuration.
    ///
    /// This is the one-shot convenience entry point: it builds a throwaway
    /// [`ScoringEngine`](crate::engine::ScoringEngine) for the corpus and runs
    /// one indexed pass.  Callers issuing repeated computations against the
    /// same corpus (workflows, window sweeps, monitoring) should build the
    /// engine once and call [`ScoringEngine::sai_list`](crate::engine::ScoringEngine::sai_list)
    /// directly.
    #[must_use]
    pub fn compute(corpus: &Corpus, db: &KeywordDatabase, config: &PspConfig) -> Self {
        crate::engine::ScoringEngine::new(corpus).sai_list(db, config)
    }

    /// The naive O(keywords × posts) reference implementation: a linear corpus
    /// scan plus a full text-pipeline run per keyword profile.  Kept as the
    /// behavioural oracle for the engine (property tests assert the indexed
    /// path returns identical results) and as the baseline of the
    /// `engine_scaling` bench.
    #[must_use]
    pub fn compute_naive(corpus: &Corpus, db: &KeywordDatabase, config: &PspConfig) -> Self {
        let pipeline = TextPipeline::new();
        let weights = config.sai_weights;
        let mut entries = Vec::new();

        for profile in db.iter() {
            // Same query construction as the indexed path, by construction.
            let query = crate::engine::ScoringEngine::profile_query(profile, config);
            let hits: Vec<&Post> = corpus
                .search(&query)
                .into_iter()
                .filter(|post| match config.min_author_credibility {
                    Some(threshold) => {
                        post.author().credibility() >= threshold
                            || post.engagement().interaction_rate() > 0.01
                    }
                    None => true,
                })
                .collect();

            let posts = hits.len();
            let views: u64 = hits.iter().map(|p| p.engagement().views).sum();
            let interactions: u64 = hits.iter().map(|p| p.engagement().interactions()).sum();
            let mut intent = 0.0;
            let mut prices = Vec::new();
            for post in &hits {
                let analysis = pipeline.analyze(post.text());
                intent += analysis.intent.score;
                prices.extend(analysis.prices);
            }
            let sai = weights.view_weight * views as f64
                + weights.interaction_weight * interactions as f64
                + weights.post_weight * posts as f64
                + weights.intent_weight * intent;

            entries.push(SaiEntry {
                keyword: profile.keyword.clone(),
                scenario: profile.scenario.clone(),
                vector: profile.vector,
                origin: profile.origin,
                posts,
                views,
                interactions,
                intent,
                prices,
                sai,
                probability: 0.0,
            });
        }

        Self::from_entries(entries)
    }

    /// Finalises a list from raw (unnormalised) entries: estimates each entry's
    /// attack probability as its share of the total SAI mass and sorts by
    /// descending SAI (keyword as tie-break).  Entries must be given in
    /// keyword-database order so the probability normalisation folds the same
    /// float sum regardless of which path produced them.
    #[must_use]
    pub(crate) fn from_entries(mut entries: Vec<SaiEntry>) -> Self {
        let total: f64 = entries.iter().map(|e| e.sai).sum();
        if total > 0.0 {
            for entry in &mut entries {
                entry.probability = entry.sai / total;
            }
        }
        entries.sort_by(|a, b| {
            b.sai
                .partial_cmp(&a.sai)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.keyword.cmp(&b.keyword))
        });
        Self { entries }
    }

    /// The entries, sorted by descending SAI.
    #[must_use]
    pub fn entries(&self) -> &[SaiEntry] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for one keyword.
    #[must_use]
    pub fn entry(&self, keyword: &str) -> Option<&SaiEntry> {
        self.entries.iter().find(|e| e.keyword == keyword)
    }

    /// The top entry (highest SAI), if any.
    #[must_use]
    pub fn top(&self) -> Option<&SaiEntry> {
        self.entries.first()
    }

    /// Entries belonging to the insider super-category (the only ones PSP re-tunes).
    #[must_use]
    pub fn insider_entries(&self) -> Vec<&SaiEntry> {
        self.entries
            .iter()
            .filter(|e| e.origin == AttackOrigin::Insider)
            .collect()
    }

    /// Entries belonging to the outsider super-category.
    #[must_use]
    pub fn outsider_entries(&self) -> Vec<&SaiEntry> {
        self.entries
            .iter()
            .filter(|e| e.origin == AttackOrigin::Outsider)
            .collect()
    }

    /// Entries attached to one threat scenario, sorted by descending SAI.
    #[must_use]
    pub fn scenario_entries(&self, scenario: &str) -> Vec<&SaiEntry> {
        self.entries
            .iter()
            .filter(|e| e.scenario == scenario)
            .collect()
    }

    /// The aggregated SAI per scenario, sorted descending — the ranking of paper
    /// Figure 12.
    #[must_use]
    pub fn scenario_ranking(&self) -> Vec<(String, f64)> {
        let mut totals: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
        for entry in &self.entries {
            *totals.entry(entry.scenario.clone()).or_insert(0.0) += entry.sai;
        }
        let mut out: Vec<_> = totals.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// The SAI mass per attack vector for one scenario, normalised to sum to 1
    /// (0-mass vectors are included).  This is the corrective-factor input of the
    /// weight generator.
    #[must_use]
    pub fn vector_shares(&self, scenario: &str) -> Vec<(AttackVector, f64)> {
        let entries = self.scenario_entries(scenario);
        let total: f64 = entries.iter().map(|e| e.sai).sum();
        AttackVector::ALL
            .iter()
            .map(|vector| {
                let mass: f64 = entries
                    .iter()
                    .filter(|e| e.vector == *vector)
                    .map(|e| e.sai)
                    .sum();
                let share = if total > 0.0 { mass / total } else { 0.0 };
                (*vector, share)
            })
            .collect()
    }

    /// All prices mined for one scenario (used by the PPIA estimation).
    #[must_use]
    pub fn scenario_prices(&self, scenario: &str) -> Vec<f64> {
        self.scenario_entries(scenario)
            .iter()
            .flat_map(|e| e.prices.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialsim::scenario;
    use socialsim::time::DateWindow;

    fn excavator_sai() -> SaiList {
        let corpus = scenario::excavator_europe(42);
        SaiList::compute(
            &corpus,
            &KeywordDatabase::excavator_seed(),
            &PspConfig::excavator_europe(),
        )
    }

    #[test]
    fn probabilities_sum_to_one() {
        let sai = excavator_sai();
        let total: f64 = sai.entries().iter().map(|e| e.probability).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn list_is_sorted_by_descending_sai() {
        let sai = excavator_sai();
        for pair in sai.entries().windows(2) {
            assert!(pair[0].sai >= pair[1].sai);
        }
    }

    #[test]
    fn dpf_delete_tops_the_excavator_ranking() {
        // Paper Figure 12: "disabling the DPF is the insider attack with the
        // highest score".
        let sai = excavator_sai();
        assert_eq!(sai.top().unwrap().scenario, "dpf-tampering");
        let ranking = sai.scenario_ranking();
        assert_eq!(ranking[0].0, "dpf-tampering");
    }

    #[test]
    fn excavator_entries_are_all_insider() {
        let sai = excavator_sai();
        assert_eq!(sai.outsider_entries().len(), 0);
        assert_eq!(sai.insider_entries().len(), sai.len());
    }

    #[test]
    fn passenger_scene_splits_insider_and_outsider() {
        let corpus = scenario::passenger_car_europe(42);
        let sai = SaiList::compute(
            &corpus,
            &KeywordDatabase::passenger_car_seed(),
            &PspConfig::passenger_car_europe(),
        );
        assert!(!sai.insider_entries().is_empty());
        assert!(!sai.outsider_entries().is_empty());
    }

    #[test]
    fn vector_shares_sum_to_one_for_active_scenarios() {
        let corpus = scenario::passenger_car_europe(42);
        let sai = SaiList::compute(
            &corpus,
            &KeywordDatabase::passenger_car_seed(),
            &PspConfig::passenger_car_europe(),
        );
        let shares = sai.vector_shares("ecm-reprogramming");
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(shares.len(), 4);
    }

    #[test]
    fn time_window_changes_the_evidence() {
        let corpus = scenario::passenger_car_europe(42);
        let db = KeywordDatabase::passenger_car_seed();
        let all_time = SaiList::compute(&corpus, &db, &PspConfig::passenger_car_europe());
        let recent = SaiList::compute(
            &corpus,
            &db,
            &PspConfig::passenger_car_europe().with_window(DateWindow::years(2021, 2023)),
        );
        let bench_all = all_time.entry("benchflash").unwrap().posts;
        let bench_recent = recent.entry("benchflash").unwrap().posts;
        assert!(bench_recent < bench_all);
    }

    #[test]
    fn prices_are_collected_for_commercial_topics() {
        let sai = excavator_sai();
        let prices = sai.scenario_prices("dpf-tampering");
        assert!(!prices.is_empty());
        let median = textmine::price::representative_price(&prices).unwrap();
        assert!((250.0..=480.0).contains(&median), "median {median}");
    }

    #[test]
    fn unknown_scenario_has_zero_shares() {
        let sai = excavator_sai();
        let shares = sai.vector_shares("does-not-exist");
        assert!(shares.iter().all(|(_, s)| *s == 0.0));
    }

    #[test]
    fn empty_corpus_gives_zero_probabilities() {
        let corpus = Corpus::new();
        let sai = SaiList::compute(
            &corpus,
            &KeywordDatabase::excavator_seed(),
            &PspConfig::excavator_europe(),
        );
        assert!(sai
            .entries()
            .iter()
            .all(|e| e.sai == 0.0 && e.probability == 0.0));
    }
}
