//! The Social Attraction Index (paper Figure 7, blocks 2, 6 and 7).
//!
//! For every keyword in the attack-keyword database, the PSP NLP component queries
//! the social corpus (target application + region + optional time window),
//! aggregates views, interactions and post counts, adds the text-mined intent
//! score, and produces a sorted SAI list.  Each entry also carries an attack
//! probability estimation: its share of the total SAI mass.

use crate::classify::AttackOrigin;
use crate::config::{PspConfig, SaiWeights};
use crate::keyword_db::{KeywordDatabase, KeywordProfile};
use serde::{Deserialize, Serialize};
use socialsim::corpus::Corpus;
use socialsim::Post;
use textmine::pipeline::TextPipeline;
use vehicle::attack_surface::AttackVector;

/// The mergeable partial evidence one corpus shard contributes to one keyword
/// profile — the shard-side half of the sharded scoring engine
/// ([`crate::engine::ShardedEngine`]).
///
/// Two kinds of evidence travel differently:
///
/// * **exact integer evidence** (post / view / interaction counts) is carried
///   as plain sums — integer addition is associative, so per-shard sums merge
///   losslessly in any order;
/// * **order-sensitive evidence** (the intent score fold, the mined price
///   stream) is carried at *per-post* granularity keyed by global post id,
///   because float addition is not associative (`(a + b) + c != a + (b + c)`
///   in general) and price lists are order-dependent.  The merge re-folds the
///   per-post values in ascending global id order — exactly the order the
///   single-engine fold uses — which is what makes the merged list
///   bit-identical to the unsharded result rather than merely close.
///
/// Within one partial the ids are strictly ascending, and partials from
/// different shards of the same corpus never share an id (the partition is
/// disjoint), so the merge is a k-way merge of disjoint sorted streams.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct SaiPartial {
    /// Number of matching (credibility-passing) posts.
    pub(crate) posts: usize,
    /// Summed views over the matching posts.
    pub(crate) views: u64,
    /// Summed interactions over the matching posts.
    pub(crate) interactions: u64,
    /// Global ids of the matching posts, strictly ascending.
    pub(crate) ids: Vec<u32>,
    /// Per-post intent scores, aligned with `ids`.
    pub(crate) intents: Vec<f64>,
    /// Number of mined prices per post, aligned with `ids`.
    pub(crate) price_counts: Vec<u32>,
    /// Mined prices, flattened in id order.
    pub(crate) prices: Vec<f64>,
}

impl SaiPartial {
    /// Folds one matching post's evidence into the partial.  Posts must be
    /// pushed in ascending global-id order (the engine feeds them straight
    /// from an ascending index query).
    pub(crate) fn push_post(
        &mut self,
        global_id: u32,
        views: u64,
        interactions: u64,
        intent: f64,
        prices: &[f64],
    ) {
        debug_assert!(
            self.ids.last().is_none_or(|last| *last < global_id),
            "shard partial fed out of order: {global_id} after {:?}",
            self.ids.last()
        );
        self.posts += 1;
        self.views += views;
        self.interactions += interactions;
        self.ids.push(global_id);
        self.intents.push(intent);
        self.price_counts.push(prices.len() as u32);
        self.prices.extend_from_slice(prices);
    }
}

/// Merges one profile's partials from every shard into a raw (unnormalised)
/// [`SaiEntry`]: integer sums are added, while the intent fold and the price
/// stream are re-folded in ascending global post id order via a k-way merge of
/// the disjoint per-shard id streams — reproducing the exact fold order (and
/// therefore the exact bits) of the single-engine aggregation.
fn merge_profile(
    profile: &KeywordProfile,
    shards: &[&SaiPartial],
    weights: SaiWeights,
) -> SaiEntry {
    let posts: usize = shards.iter().map(|p| p.posts).sum();
    let views: u64 = shards.iter().map(|p| p.views).sum();
    let interactions: u64 = shards.iter().map(|p| p.interactions).sum();

    // Only shards that matched anything take part in the k-way merge.
    let active: Vec<&SaiPartial> = shards
        .iter()
        .copied()
        .filter(|p| !p.ids.is_empty())
        .collect();
    let matched: usize = active.iter().map(|p| p.ids.len()).sum();
    let mut intent = 0.0_f64;
    let mut prices = Vec::with_capacity(active.iter().map(|p| p.prices.len()).sum());
    let mut next = vec![0_usize; active.len()];
    let mut price_offset = vec![0_usize; active.len()];
    for _ in 0..matched {
        // Pick the stream whose current head has the smallest global id; the
        // streams are disjoint, so the minimum is unique.
        let mut best: Option<usize> = None;
        for (shard, partial) in active.iter().enumerate() {
            if next[shard] < partial.ids.len()
                && best.is_none_or(|b: usize| partial.ids[next[shard]] < active[b].ids[next[b]])
            {
                best = Some(shard);
            }
        }
        let shard = best.expect("k-way merge exhausted early");
        let at = next[shard];
        intent += active[shard].intents[at];
        let count = active[shard].price_counts[at] as usize;
        let from = price_offset[shard];
        prices.extend_from_slice(&active[shard].prices[from..from + count]);
        next[shard] = at + 1;
        price_offset[shard] = from + count;
    }

    let sai = weights.view_weight * views as f64
        + weights.interaction_weight * interactions as f64
        + weights.post_weight * posts as f64
        + weights.intent_weight * intent;

    SaiEntry {
        keyword: profile.keyword.clone(),
        scenario: profile.scenario.clone(),
        vector: profile.vector,
        origin: profile.origin,
        posts,
        views,
        interactions,
        intent,
        prices,
        sai,
        probability: 0.0,
    }
}

/// One entry of the SAI list: the social evidence attached to one attack keyword.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaiEntry {
    /// The keyword the evidence was collected for.
    pub keyword: String,
    /// The threat-scenario identifier the keyword belongs to.
    pub scenario: String,
    /// The attack vector of the discussed technique.
    pub vector: AttackVector,
    /// Insider or outsider attack.
    pub origin: AttackOrigin,
    /// Number of matching posts.
    pub posts: usize,
    /// Total views over the matching posts.
    pub views: u64,
    /// Total interactions over the matching posts.
    pub interactions: u64,
    /// Summed text-mined intent score.
    pub intent: f64,
    /// Prices mined from the matching posts (EUR).
    pub prices: Vec<f64>,
    /// The Social Attraction Index score.
    pub sai: f64,
    /// The attack-probability estimation: this entry's share of the total SAI mass
    /// (0 when the whole list is empty).
    pub probability: f64,
}

/// The sorted SAI list.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SaiList {
    entries: Vec<SaiEntry>,
}

impl SaiList {
    /// Computes the SAI list for a corpus, keyword database and configuration.
    ///
    /// This is the one-shot convenience entry point: it builds a throwaway
    /// [`ScoringEngine`](crate::engine::ScoringEngine) for the corpus and runs
    /// one indexed pass.  Callers issuing repeated computations against the
    /// same corpus (workflows, window sweeps, monitoring) should build the
    /// engine once and call [`ScoringEngine::sai_list`](crate::engine::ScoringEngine::sai_list)
    /// directly.
    #[must_use]
    pub fn compute(corpus: &Corpus, db: &KeywordDatabase, config: &PspConfig) -> Self {
        crate::engine::ScoringEngine::new(corpus).sai_list(db, config)
    }

    /// The naive O(keywords × posts) reference implementation: a linear corpus
    /// scan plus a full text-pipeline run per keyword profile.  Kept as the
    /// behavioural oracle for the engine (property tests assert the indexed
    /// path returns identical results) and as the baseline of the
    /// `engine_scaling` bench.
    #[must_use]
    pub fn compute_naive(corpus: &Corpus, db: &KeywordDatabase, config: &PspConfig) -> Self {
        let pipeline = TextPipeline::new();
        let weights = config.sai_weights;
        let mut entries = Vec::new();

        for profile in db.iter() {
            // Same query construction as the indexed path, by construction.
            let query = crate::engine::ScoringEngine::profile_query(profile, config);
            let hits: Vec<&Post> = corpus
                .search(&query)
                .into_iter()
                .filter(|post| match config.min_author_credibility {
                    Some(threshold) => {
                        post.author().credibility() >= threshold
                            || post.engagement().interaction_rate() > 0.01
                    }
                    None => true,
                })
                .collect();

            let posts = hits.len();
            let views: u64 = hits.iter().map(|p| p.engagement().views).sum();
            let interactions: u64 = hits.iter().map(|p| p.engagement().interactions()).sum();
            let mut intent = 0.0;
            let mut prices = Vec::new();
            for post in &hits {
                let analysis = pipeline.analyze(post.text());
                intent += analysis.intent.score;
                prices.extend(analysis.prices);
            }
            let sai = weights.view_weight * views as f64
                + weights.interaction_weight * interactions as f64
                + weights.post_weight * posts as f64
                + weights.intent_weight * intent;

            entries.push(SaiEntry {
                keyword: profile.keyword.clone(),
                scenario: profile.scenario.clone(),
                vector: profile.vector,
                origin: profile.origin,
                posts,
                views,
                interactions,
                intent,
                prices,
                sai,
                probability: 0.0,
            });
        }

        Self::from_entries(entries)
    }

    /// Merges per-shard partial evidence into the finished SAI list — the
    /// merge step of the sharded engine.
    ///
    /// `per_shard[s][p]` is shard `s`'s [`SaiPartial`] for the `p`-th profile
    /// of `db` (every inner vector must cover all profiles, in database
    /// order).  Counts and integer sums are added across shards, the
    /// order-sensitive evidence is re-folded in ascending global post id order
    /// ([`merge_profile`]), and only then does the usual normalisation
    /// (probability shares, sorting) run — once, over the merged raw entries,
    /// never per shard.  Merging *before* normalisation is what keeps the
    /// result bit-identical to the single-engine path: probabilities are
    /// ratios of the merged totals, not averages of per-shard ratios.
    pub(crate) fn from_shard_partials(
        db: &KeywordDatabase,
        config: &PspConfig,
        per_shard: &[Vec<SaiPartial>],
    ) -> Self {
        let weights = config.sai_weights;
        let entries: Vec<SaiEntry> = db
            .iter()
            .enumerate()
            .map(|(p, profile)| {
                let shards: Vec<&SaiPartial> = per_shard.iter().map(|row| &row[p]).collect();
                merge_profile(profile, &shards, weights)
            })
            .collect();
        Self::from_entries(entries)
    }

    /// Finalises a list from raw (unnormalised) entries: estimates each entry's
    /// attack probability as its share of the total SAI mass and sorts by
    /// descending SAI (keyword as tie-break).  Entries must be given in
    /// keyword-database order so the probability normalisation folds the same
    /// float sum regardless of which path produced them.
    #[must_use]
    pub(crate) fn from_entries(mut entries: Vec<SaiEntry>) -> Self {
        let total: f64 = entries.iter().map(|e| e.sai).sum();
        if total > 0.0 {
            for entry in &mut entries {
                entry.probability = entry.sai / total;
            }
        }
        entries.sort_by(|a, b| {
            b.sai
                .partial_cmp(&a.sai)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.keyword.cmp(&b.keyword))
        });
        Self { entries }
    }

    /// The entries, sorted by descending SAI.
    #[must_use]
    pub fn entries(&self) -> &[SaiEntry] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for one keyword.
    #[must_use]
    pub fn entry(&self, keyword: &str) -> Option<&SaiEntry> {
        self.entries.iter().find(|e| e.keyword == keyword)
    }

    /// The top entry (highest SAI), if any.
    #[must_use]
    pub fn top(&self) -> Option<&SaiEntry> {
        self.entries.first()
    }

    /// Entries belonging to the insider super-category (the only ones PSP re-tunes).
    #[must_use]
    pub fn insider_entries(&self) -> Vec<&SaiEntry> {
        self.entries
            .iter()
            .filter(|e| e.origin == AttackOrigin::Insider)
            .collect()
    }

    /// Entries belonging to the outsider super-category.
    #[must_use]
    pub fn outsider_entries(&self) -> Vec<&SaiEntry> {
        self.entries
            .iter()
            .filter(|e| e.origin == AttackOrigin::Outsider)
            .collect()
    }

    /// Entries attached to one threat scenario, sorted by descending SAI.
    #[must_use]
    pub fn scenario_entries(&self, scenario: &str) -> Vec<&SaiEntry> {
        self.entries
            .iter()
            .filter(|e| e.scenario == scenario)
            .collect()
    }

    /// The aggregated SAI per scenario, sorted descending — the ranking of paper
    /// Figure 12.
    #[must_use]
    pub fn scenario_ranking(&self) -> Vec<(String, f64)> {
        let mut totals: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
        for entry in &self.entries {
            *totals.entry(entry.scenario.clone()).or_insert(0.0) += entry.sai;
        }
        let mut out: Vec<_> = totals.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// The SAI mass per attack vector for one scenario, normalised to sum to 1
    /// (0-mass vectors are included).  This is the corrective-factor input of the
    /// weight generator.
    #[must_use]
    pub fn vector_shares(&self, scenario: &str) -> Vec<(AttackVector, f64)> {
        let entries = self.scenario_entries(scenario);
        let total: f64 = entries.iter().map(|e| e.sai).sum();
        AttackVector::ALL
            .iter()
            .map(|vector| {
                let mass: f64 = entries
                    .iter()
                    .filter(|e| e.vector == *vector)
                    .map(|e| e.sai)
                    .sum();
                let share = if total > 0.0 { mass / total } else { 0.0 };
                (*vector, share)
            })
            .collect()
    }

    /// All prices mined for one scenario (used by the PPIA estimation).
    #[must_use]
    pub fn scenario_prices(&self, scenario: &str) -> Vec<f64> {
        self.scenario_entries(scenario)
            .iter()
            .flat_map(|e| e.prices.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialsim::scenario;
    use socialsim::time::DateWindow;

    fn excavator_sai() -> SaiList {
        let corpus = scenario::excavator_europe(42);
        SaiList::compute(
            &corpus,
            &KeywordDatabase::excavator_seed(),
            &PspConfig::excavator_europe(),
        )
    }

    #[test]
    fn probabilities_sum_to_one() {
        let sai = excavator_sai();
        let total: f64 = sai.entries().iter().map(|e| e.probability).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn list_is_sorted_by_descending_sai() {
        let sai = excavator_sai();
        for pair in sai.entries().windows(2) {
            assert!(pair[0].sai >= pair[1].sai);
        }
    }

    #[test]
    fn dpf_delete_tops_the_excavator_ranking() {
        // Paper Figure 12: "disabling the DPF is the insider attack with the
        // highest score".
        let sai = excavator_sai();
        assert_eq!(sai.top().unwrap().scenario, "dpf-tampering");
        let ranking = sai.scenario_ranking();
        assert_eq!(ranking[0].0, "dpf-tampering");
    }

    #[test]
    fn excavator_entries_are_all_insider() {
        let sai = excavator_sai();
        assert_eq!(sai.outsider_entries().len(), 0);
        assert_eq!(sai.insider_entries().len(), sai.len());
    }

    #[test]
    fn passenger_scene_splits_insider_and_outsider() {
        let corpus = scenario::passenger_car_europe(42);
        let sai = SaiList::compute(
            &corpus,
            &KeywordDatabase::passenger_car_seed(),
            &PspConfig::passenger_car_europe(),
        );
        assert!(!sai.insider_entries().is_empty());
        assert!(!sai.outsider_entries().is_empty());
    }

    #[test]
    fn vector_shares_sum_to_one_for_active_scenarios() {
        let corpus = scenario::passenger_car_europe(42);
        let sai = SaiList::compute(
            &corpus,
            &KeywordDatabase::passenger_car_seed(),
            &PspConfig::passenger_car_europe(),
        );
        let shares = sai.vector_shares("ecm-reprogramming");
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(shares.len(), 4);
    }

    #[test]
    fn time_window_changes_the_evidence() {
        let corpus = scenario::passenger_car_europe(42);
        let db = KeywordDatabase::passenger_car_seed();
        let all_time = SaiList::compute(&corpus, &db, &PspConfig::passenger_car_europe());
        let recent = SaiList::compute(
            &corpus,
            &db,
            &PspConfig::passenger_car_europe().with_window(DateWindow::years(2021, 2023)),
        );
        let bench_all = all_time.entry("benchflash").unwrap().posts;
        let bench_recent = recent.entry("benchflash").unwrap().posts;
        assert!(bench_recent < bench_all);
    }

    #[test]
    fn prices_are_collected_for_commercial_topics() {
        let sai = excavator_sai();
        let prices = sai.scenario_prices("dpf-tampering");
        assert!(!prices.is_empty());
        let median = textmine::price::representative_price(&prices).unwrap();
        assert!((250.0..=480.0).contains(&median), "median {median}");
    }

    #[test]
    fn unknown_scenario_has_zero_shares() {
        let sai = excavator_sai();
        let shares = sai.vector_shares("does-not-exist");
        assert!(shares.iter().all(|(_, s)| *s == 0.0));
    }

    #[test]
    fn empty_corpus_gives_zero_probabilities() {
        let corpus = Corpus::new();
        let sai = SaiList::compute(
            &corpus,
            &KeywordDatabase::excavator_seed(),
            &PspConfig::excavator_europe(),
        );
        assert!(sai
            .entries()
            .iter()
            .all(|e| e.sai == 0.0 && e.probability == 0.0));
    }
}
