//! Plugging PSP-tuned tables back into the ISO/SAE-21434 TARA engine.
//!
//! This is where the two halves of the workspace meet: a TARA built with the
//! `iso21434` crate is evaluated twice — once with the standard attack-vector table
//! (the static model the paper criticises) and once with the PSP insider table for
//! the relevant threat scenario — and the differences are reported per threat.

use crate::engine::ScoringEngine;
use crate::workflow::{PspOutcome, PspWorkflow};
use iso21434::feasibility::attack_vector::AttackVectorModel;
use iso21434::feasibility::AttackFeasibilityRating;
use iso21434::risk::RiskValue;
use iso21434::tara::{Tara, TaraReport};
use iso21434::Iso21434Error;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The per-threat difference between the static and the dynamic evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreatDelta {
    /// The threat scenario title.
    pub threat_title: String,
    /// Feasibility under the standard G.9 table.
    pub static_feasibility: AttackFeasibilityRating,
    /// Feasibility under the PSP-tuned table.
    pub dynamic_feasibility: AttackFeasibilityRating,
    /// Risk value under the standard table.
    pub static_risk: RiskValue,
    /// Risk value under the PSP-tuned table.
    pub dynamic_risk: RiskValue,
}

impl ThreatDelta {
    /// Whether the dynamic model changed the risk value at all.
    #[must_use]
    pub fn risk_changed(&self) -> bool {
        self.static_risk != self.dynamic_risk
    }

    /// Whether the dynamic model raised the risk (the typical direction for the
    /// under-rated insider threats the paper worries about).
    #[must_use]
    pub fn risk_raised(&self) -> bool {
        self.dynamic_risk > self.static_risk
    }
}

/// The result of a static-vs-dynamic comparison.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynamicTaraComparison {
    /// The report produced with the standard table.
    pub static_report: TaraReport,
    /// The report produced with the PSP-tuned table.
    pub dynamic_report: TaraReport,
    /// Per-threat deltas, keyed by threat title.
    pub deltas: BTreeMap<String, ThreatDelta>,
}

impl DynamicTaraComparison {
    /// Evaluates a TARA statically and dynamically.
    ///
    /// `scenario` names the PSP insider scenario whose tuned table should drive the
    /// dynamic evaluation (threats outside that scenario still see the tuned table,
    /// which mirrors how an analyst would apply the re-tuned G.9 annex to the item
    /// under analysis).
    ///
    /// # Errors
    ///
    /// Forwards [`Iso21434Error`] from the TARA engine (unknown assets, missing
    /// attack paths).
    pub fn evaluate(
        tara: &Tara,
        outcome: &PspOutcome,
        scenario: &str,
    ) -> Result<Self, Iso21434Error> {
        let static_model = AttackVectorModel::standard();
        let dynamic_table = outcome
            .insider_table(scenario)
            .cloned()
            .unwrap_or_else(iso21434::feasibility::attack_vector::AttackVectorTable::standard);
        let dynamic_model = AttackVectorModel::with_table(dynamic_table);

        let static_report = tara.evaluate(&static_model)?;
        let dynamic_report = tara.evaluate(&dynamic_model)?;

        let mut deltas = BTreeMap::new();
        for assessment in static_report.assessments() {
            if let Some(dynamic) = dynamic_report.assessment_of(&assessment.threat_title) {
                deltas.insert(
                    assessment.threat_title.clone(),
                    ThreatDelta {
                        threat_title: assessment.threat_title.clone(),
                        static_feasibility: assessment.feasibility,
                        dynamic_feasibility: dynamic.feasibility,
                        static_risk: assessment.risk,
                        dynamic_risk: dynamic.risk,
                    },
                );
            }
        }

        Ok(Self {
            static_report,
            dynamic_report,
            deltas,
        })
    }

    /// Runs the PSP workflow against a prebuilt [`ScoringEngine`] and evaluates
    /// the TARA with the freshly tuned tables — the continuous-re-evaluation
    /// entry point: the corpus is indexed once in the engine and each
    /// re-evaluation only pays for the indexed scoring pass.
    ///
    /// # Errors
    ///
    /// Forwards [`Iso21434Error`] from the TARA engine.
    pub fn evaluate_with_engine(
        tara: &Tara,
        engine: &ScoringEngine<'_>,
        workflow: &PspWorkflow,
        scenario: &str,
    ) -> Result<Self, Iso21434Error> {
        let outcome = workflow.run_with_engine(engine);
        Self::evaluate(tara, &outcome, scenario)
    }

    /// The delta for one threat.
    #[must_use]
    pub fn delta(&self, threat_title: &str) -> Option<&ThreatDelta> {
        self.deltas.get(threat_title)
    }

    /// Number of threats whose risk value changed.
    #[must_use]
    pub fn changed_count(&self) -> usize {
        self.deltas.values().filter(|d| d.risk_changed()).count()
    }

    /// Number of threats whose risk value increased under the dynamic model.
    #[must_use]
    pub fn raised_count(&self) -> usize {
        self.deltas.values().filter(|d| d.risk_raised()).count()
    }
}

/// Builds the ECM reprogramming / powertrain DoS TARA used by the paper's running
/// example, the examples and the benches.  The item is the engine control module of
/// the given vehicle (only the name is used; the architecture itself comes from the
/// `vehicle` reference models).
#[must_use]
pub fn ecm_reference_tara(item_name: &str) -> Tara {
    use iso21434::asset::{Asset, AssetCategory, CybersecurityProperty};
    use iso21434::attack_path::AttackPath;
    use iso21434::impact::{DamageScenario, ImpactCategory, ImpactRating};
    use iso21434::tara::TaraEntry;
    use iso21434::threat::{AttackerProfile, StrideCategory, ThreatScenario};
    use vehicle::attack_surface::AttackVector;

    let firmware = Asset::new("ECM firmware", AssetCategory::Firmware)
        .hosted_on("ECM")
        .with_property(CybersecurityProperty::Integrity)
        .with_property(CybersecurityProperty::Authenticity);
    let calibration = Asset::new("ECM calibration", AssetCategory::Calibration)
        .hosted_on("ECM")
        .with_property(CybersecurityProperty::Integrity);
    let torque = Asset::new("Torque control function", AssetCategory::Function)
        .hosted_on("ECM")
        .with_property(CybersecurityProperty::Availability);

    let reprogramming = TaraEntry::new(
        ThreatScenario::new(
            "ECM reprogramming",
            "ECM firmware",
            StrideCategory::Tampering,
        )
        .by(AttackerProfile::Rational)
        .via(AttackVector::Physical)
        .with_keyword("chiptuning")
        .with_keyword("benchflash"),
        DamageScenario::new("Emission limits exceeded, warranty and type-approval fraud")
            .rate(ImpactCategory::Financial, ImpactRating::Major)
            .rate(ImpactCategory::Operational, ImpactRating::Moderate),
    )
    .with_path(
        AttackPath::new("bench flash")
            .step("remove the ECM from the vehicle", AttackVector::Physical)
            .step(
                "open the case and flash via boot mode",
                AttackVector::Physical,
            ),
    )
    .with_path(
        AttackPath::new("OBD reflash")
            .step(
                "connect a pass-thru tool to the OBD port",
                AttackVector::Local,
            )
            .step("unlock the programming session", AttackVector::Local)
            .step("flash the modified calibration", AttackVector::Local),
    );

    let calibration_tamper = TaraEntry::new(
        ThreatScenario::new(
            "Calibration parameter tampering",
            "ECM calibration",
            StrideCategory::Tampering,
        )
        .by(AttackerProfile::Insider)
        .via(AttackVector::Local)
        .with_keyword("chiptuning"),
        DamageScenario::new("Torque and emission maps outside homologated range")
            .rate(ImpactCategory::Financial, ImpactRating::Major)
            .rate(ImpactCategory::Safety, ImpactRating::Moderate),
    )
    .with_path(
        AttackPath::new("OBD calibration write")
            .step("write calibration blocks over OBD", AttackVector::Local),
    );

    let dos = TaraEntry::new(
        ThreatScenario::new(
            "Powertrain CAN denial of service",
            "Torque control function",
            StrideCategory::DenialOfService,
        )
        .by(AttackerProfile::Outsider)
        .via(AttackVector::Physical),
        DamageScenario::new("Loss of propulsion while driving")
            .rate(ImpactCategory::Safety, ImpactRating::Severe)
            .rate(ImpactCategory::Operational, ImpactRating::Major),
    )
    .with_path(
        AttackPath::new("bus flood via spliced harness")
            .step(
                "splice into the powertrain CAN harness",
                AttackVector::Physical,
            )
            .step(
                "flood the bus with highest-priority frames",
                AttackVector::Physical,
            ),
    );

    Tara::new(item_name)
        .asset(firmware)
        .asset(calibration)
        .asset(torque)
        .entry(reprogramming)
        .entry(calibration_tamper)
        .entry(dos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PspConfig;
    use crate::keyword_db::KeywordDatabase;
    use crate::workflow::PspWorkflow;
    use socialsim::scenario;

    fn outcome() -> PspOutcome {
        PspWorkflow::new(
            PspConfig::passenger_car_europe(),
            KeywordDatabase::passenger_car_seed(),
        )
        .run(&scenario::passenger_car_europe(42))
    }

    #[test]
    fn dynamic_model_raises_the_reprogramming_risk() {
        let comparison = DynamicTaraComparison::evaluate(
            &ecm_reference_tara("ECM"),
            &outcome(),
            "ecm-reprogramming",
        )
        .unwrap();
        let delta = comparison.delta("ECM reprogramming").unwrap();
        assert!(
            delta.risk_raised(),
            "insider tuning must raise the risk: {delta:?}"
        );
        assert!(delta.dynamic_feasibility > delta.static_feasibility);
        assert!(comparison.raised_count() >= 1);
    }

    #[test]
    fn comparison_covers_every_threat() {
        let comparison = DynamicTaraComparison::evaluate(
            &ecm_reference_tara("ECM"),
            &outcome(),
            "ecm-reprogramming",
        )
        .unwrap();
        assert_eq!(comparison.deltas.len(), 3);
        assert_eq!(
            comparison.static_report.assessments().len(),
            comparison.dynamic_report.assessments().len()
        );
    }

    #[test]
    fn missing_scenario_falls_back_to_standard_table() {
        let comparison = DynamicTaraComparison::evaluate(
            &ecm_reference_tara("ECM"),
            &outcome(),
            "no-such-scenario",
        )
        .unwrap();
        assert_eq!(comparison.changed_count(), 0);
    }

    #[test]
    fn reference_tara_is_well_formed() {
        let tara = ecm_reference_tara("ECM");
        assert_eq!(tara.assets().len(), 3);
        assert_eq!(tara.entries().len(), 3);
        let report = tara
            .evaluate(&AttackVectorModel::standard())
            .expect("reference TARA evaluates");
        assert_eq!(report.assessments().len(), 3);
    }
}
