//! The financial attack-feasibility model (paper Figure 10, Equations 1–7).
//!
//! The workflow:
//!
//! 1. gather inputs — previous-year sales (`VS`) or market share (`MS`), the
//!    potential-attacker percentage (`PEA`) from cybersecurity annual reports, and
//!    the mined purchase price per insider attack (`PPIA`) and variable cost per
//!    unit (`VCU`);
//! 2. compute the market value `MV = PAE · PPIA` (Equation 1) with
//!    `PAE = VS · PEA` or `MS · PEA` (Equation 2);
//! 3. compute the break-even point (Equation 3) and, through the inverse function
//!    (Equation 5), the fixed-cost budget `FC` an attacker could justify — the
//!    investment the product's protections must withstand;
//! 4. map the result onto an attack-feasibility rating: attacks whose demand
//!    comfortably exceeds their break-even volume sit in the profitable blue zone
//!    of Figure 11 and are rated medium-to-high.

use crate::error::PspError;
use crate::sai::SaiList;
use iso21434::feasibility::AttackFeasibilityRating;
use market::bep::BreakEvenAnalysis;
use market::pricing::PricingStudy;
use market::reports::CyberSecurityReport;
use market::sales::SalesLedger;
use market::share::MarketStructure;
use serde::{Deserialize, Serialize};
use textmine::cluster::{dominant_cluster, kmeans_1d};
use textmine::price::representative_price;

/// The inputs of a financial assessment for one insider-attack scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinancialInputs {
    /// Free-text application name matching the sales ledger (e.g. "excavator").
    pub application: String,
    /// Free-text region name matching the sales ledger (e.g. "Europe").
    pub region: String,
    /// The attack-report category used to look up `PEA` (e.g. "emission tampering").
    pub report_category: String,
    /// Market structure (monopolistic → use `VS`, otherwise use `MS`).
    pub market: MarketStructure,
    /// Number of competing adversaries sharing the market (`n` in Equation 3).
    pub competitors: u32,
    /// Variable cost per unit if known; when `None` the pricing study's estimate
    /// (bare-component median or PPIA / 7) is used.
    pub vcu_override: Option<f64>,
    /// Engineering hours the adversary needs (`FTEH`, Equation 4); used to report
    /// the forward fixed cost alongside the inverse one.
    pub adversary_fte_hours: f64,
    /// Hourly cost of the adversary workforce (`ch`, Equation 4).
    pub adversary_hourly_cost: f64,
    /// Yearly straight-line depreciation of the adversary lab (`SLD`, Equation 4).
    pub adversary_sld: f64,
}

impl FinancialInputs {
    /// The inputs of the paper's excavator DPF-tampering example.
    #[must_use]
    pub fn paper_excavator_example() -> Self {
        Self {
            application: "excavator".to_string(),
            region: "Europe".to_string(),
            report_category: "emission tampering (DPF)".to_string(),
            market: market::datasets::excavator_market_structure(),
            competitors: market::datasets::PAPER_COMPETITORS,
            vcu_override: Some(50.0),
            adversary_fte_hours: 1_500.0,
            adversary_hourly_cost: 85.0,
            adversary_sld: market::depreciation::straight_line_depreciation(
                &market::depreciation::typical_adversary_lab(),
            ),
        }
    }
}

/// The outcome of the financial workflow for one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinancialAssessment {
    /// The scenario assessed.
    pub scenario: String,
    /// Previous-year sales used as `VS`.
    pub vehicle_sales: u64,
    /// The potential-attacker percentage `PEA`.
    pub pea: f64,
    /// The potential-attacker estimation `PAE` (Equation 2).
    pub pae: f64,
    /// The purchase price per insider attack `PPIA` (EUR).
    pub ppia: f64,
    /// The variable cost per unit `VCU` (EUR).
    pub vcu: f64,
    /// The market value `MV = PAE · PPIA` (Equation 1, EUR per year).
    pub market_value: f64,
    /// The forward fixed cost from the effort model (Equation 4, EUR).
    pub forward_fixed_cost: f64,
    /// The break-even volume for the forward fixed cost (Equation 3, units).
    pub break_even_units: Option<f64>,
    /// The inverse fixed cost: the investment an attacker could justify when the
    /// break-even volume equals `PAE` (Equation 5, EUR).  This is the budget the
    /// product's protections must withstand.
    pub investment_bound: f64,
    /// Whether the attack sits in the profitable (blue) zone of Figure 11 at the
    /// demand level `PAE`.
    pub profitable: bool,
    /// The feasibility rating derived from the financial evidence.
    pub rating: AttackFeasibilityRating,
}

impl FinancialAssessment {
    /// Runs the financial workflow.
    ///
    /// `sai` provides the mined prices for the scenario; `sales` and `report`
    /// provide the market-size terms.
    ///
    /// # Errors
    ///
    /// * [`PspError::InvalidFinancialInput`] when sales, `PEA` or prices are missing
    ///   or non-positive.
    pub fn assess(
        scenario: &str,
        sai: &SaiList,
        sales: &SalesLedger,
        report: &CyberSecurityReport,
        inputs: &FinancialInputs,
    ) -> Result<Self, PspError> {
        let vehicle_sales = sales
            .previous_year_sales(&inputs.application, &inputs.region)
            .ok_or(PspError::InvalidFinancialInput {
                parameter: "VS",
                detail: format!(
                    "no sales data for {} / {}",
                    inputs.application, inputs.region
                ),
            })?;
        let pea = report
            .potential_attacker_share(&inputs.report_category)
            .ok_or(PspError::InvalidFinancialInput {
                parameter: "PEA",
                detail: format!("no report category matching `{}`", inputs.report_category),
            })?;
        if pea <= 0.0 {
            return Err(PspError::InvalidFinancialInput {
                parameter: "PEA",
                detail: "potential-attacker share must be positive".to_string(),
            });
        }

        // PPIA from the mined prices: the median of the dominant listing cluster.
        // Clustering first (k = 2) separates bare-component listings from
        // full-service listings when both are present; the median inside the
        // dominant cluster is then robust against the ±15 % listing noise.
        let prices = sai.scenario_prices(scenario);
        if prices.is_empty() {
            return Err(PspError::InvalidFinancialInput {
                parameter: "PPIA",
                detail: format!("no prices mined for scenario `{scenario}`"),
            });
        }
        let clusters = kmeans_1d(&prices, 2, 50);
        let well_separated = clusters.len() == 2
            && clusters[1].center > clusters[0].center * 2.0
            && !clusters[0].is_empty();
        let ppia = if well_separated {
            dominant_cluster(&clusters)
                .and_then(|c| representative_price(&c.members))
                .unwrap_or(0.0)
        } else {
            representative_price(&prices).unwrap_or(0.0)
        };
        if ppia <= 0.0 {
            return Err(PspError::InvalidFinancialInput {
                parameter: "PPIA",
                detail: "mined price is not positive".to_string(),
            });
        }
        let vcu = inputs.vcu_override.unwrap_or_else(|| {
            PricingStudy::from_observations(
                prices
                    .iter()
                    .map(|p| market::pricing::PriceObservation::service(*p)),
            )
            .vcu()
            .unwrap_or(ppia / 7.0)
        });

        // Equations 1 and 2.
        let pae = inputs.market.exposed_units(vehicle_sales) * pea;
        let market_value = pae * ppia;

        // Equations 3 to 5.
        let forward = BreakEvenAnalysis::from_effort(
            inputs.adversary_fte_hours,
            inputs.adversary_hourly_cost,
            inputs.adversary_sld,
            ppia,
            vcu,
            inputs.competitors,
        );
        let break_even_units = forward.break_even_units();
        let investment_bound = forward.fixed_cost_for_break_even(pae);
        let profitable = forward.is_profitable_at(pae);

        let rating = rate_financial_feasibility(pae, break_even_units);

        Ok(Self {
            scenario: scenario.to_string(),
            vehicle_sales,
            pea,
            pae,
            ppia,
            vcu,
            market_value,
            forward_fixed_cost: forward.fixed_cost,
            break_even_units,
            investment_bound,
            profitable,
            rating,
        })
    }
}

/// Maps the demand-to-break-even ratio onto the shared feasibility scale: demand at
/// twice the break-even volume (or more) is High, above break-even is Medium, above
/// half of it is Low, anything else Very Low.  This realises the paper's statement
/// that attacks in the profitable blue zone have a "feasibility rate ranging from
/// medium to high".
#[must_use]
pub fn rate_financial_feasibility(
    demand_units: f64,
    break_even_units: Option<f64>,
) -> AttackFeasibilityRating {
    let Some(bep) = break_even_units else {
        return AttackFeasibilityRating::VeryLow;
    };
    if bep <= 0.0 {
        return AttackFeasibilityRating::High;
    }
    let ratio = demand_units / bep;
    if ratio >= 2.0 {
        AttackFeasibilityRating::High
    } else if ratio >= 1.0 {
        AttackFeasibilityRating::Medium
    } else if ratio >= 0.5 {
        AttackFeasibilityRating::Low
    } else {
        AttackFeasibilityRating::VeryLow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PspConfig;
    use crate::keyword_db::KeywordDatabase;
    use socialsim::scenario;

    fn excavator_assessment() -> FinancialAssessment {
        let corpus = scenario::excavator_europe(42);
        let sai = SaiList::compute(
            &corpus,
            &KeywordDatabase::excavator_seed(),
            &PspConfig::excavator_europe(),
        );
        FinancialAssessment::assess(
            "dpf-tampering",
            &sai,
            &market::datasets::excavator_sales_europe(),
            &market::datasets::annual_report(),
            &FinancialInputs::paper_excavator_example(),
        )
        .expect("the calibrated excavator example always assesses")
    }

    #[test]
    fn equation_2_pae_matches_the_paper() {
        let a = excavator_assessment();
        assert!(
            (a.pae - market::datasets::PAPER_PAE).abs() < 5.0,
            "PAE = {}",
            a.pae
        );
    }

    #[test]
    fn equation_6_market_value_matches_the_paper_within_price_noise() {
        let a = excavator_assessment();
        // The mined PPIA carries ±15 % listing noise around 360 EUR, so MV lands
        // within roughly ±10 % of the paper's 506 160 EUR.
        let relative_error = (a.market_value - market::datasets::PAPER_MV_EUR).abs()
            / market::datasets::PAPER_MV_EUR;
        assert!(relative_error < 0.10, "MV = {}", a.market_value);
        assert!((300.0..=430.0).contains(&a.ppia), "PPIA = {}", a.ppia);
    }

    #[test]
    fn equation_7_investment_bound_matches_the_paper_within_price_noise() {
        let a = excavator_assessment();
        let relative_error = (a.investment_bound - market::datasets::PAPER_FC_EUR).abs()
            / market::datasets::PAPER_FC_EUR;
        assert!(relative_error < 0.15, "FC = {}", a.investment_bound);
    }

    #[test]
    fn dpf_tampering_is_profitable_and_highly_feasible() {
        let a = excavator_assessment();
        assert!(a.profitable);
        assert!(a.rating >= AttackFeasibilityRating::Medium);
        assert!(a.break_even_units.is_some());
    }

    #[test]
    fn missing_sales_data_is_reported() {
        let corpus = scenario::excavator_europe(42);
        let sai = SaiList::compute(
            &corpus,
            &KeywordDatabase::excavator_seed(),
            &PspConfig::excavator_europe(),
        );
        let mut inputs = FinancialInputs::paper_excavator_example();
        inputs.application = "submarine".to_string();
        let err = FinancialAssessment::assess(
            "dpf-tampering",
            &sai,
            &market::datasets::excavator_sales_europe(),
            &market::datasets::annual_report(),
            &inputs,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            PspError::InvalidFinancialInput {
                parameter: "VS",
                ..
            }
        ));
    }

    #[test]
    fn scenario_without_prices_is_rejected() {
        let corpus = scenario::excavator_europe(42);
        let sai = SaiList::compute(
            &corpus,
            &KeywordDatabase::excavator_seed(),
            &PspConfig::excavator_europe(),
        );
        let err = FinancialAssessment::assess(
            "unknown-scenario",
            &sai,
            &market::datasets::excavator_sales_europe(),
            &market::datasets::annual_report(),
            &FinancialInputs::paper_excavator_example(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            PspError::InvalidFinancialInput {
                parameter: "PPIA",
                ..
            }
        ));
    }

    #[test]
    fn rating_bands() {
        assert_eq!(
            rate_financial_feasibility(100.0, None),
            AttackFeasibilityRating::VeryLow
        );
        assert_eq!(
            rate_financial_feasibility(100.0, Some(40.0)),
            AttackFeasibilityRating::High
        );
        assert_eq!(
            rate_financial_feasibility(100.0, Some(80.0)),
            AttackFeasibilityRating::Medium
        );
        assert_eq!(
            rate_financial_feasibility(100.0, Some(150.0)),
            AttackFeasibilityRating::Low
        );
        assert_eq!(
            rate_financial_feasibility(100.0, Some(500.0)),
            AttackFeasibilityRating::VeryLow
        );
        assert_eq!(
            rate_financial_feasibility(10.0, Some(0.0)),
            AttackFeasibilityRating::High
        );
    }

    #[test]
    fn lower_demand_reduces_feasibility() {
        let corpus = scenario::excavator_europe(42);
        let sai = SaiList::compute(
            &corpus,
            &KeywordDatabase::excavator_seed(),
            &PspConfig::excavator_europe(),
        );
        let mut inputs = FinancialInputs::paper_excavator_example();
        inputs.market = MarketStructure::with_share(0.01);
        let small = FinancialAssessment::assess(
            "dpf-tampering",
            &sai,
            &market::datasets::excavator_sales_europe(),
            &market::datasets::annual_report(),
            &inputs,
        )
        .unwrap();
        let big = excavator_assessment();
        assert!(small.pae < big.pae);
        assert!(small.rating <= big.rating);
    }
}
