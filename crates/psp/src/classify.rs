//! Insider / outsider classification (paper Figure 7, blocks 8–9).
//!
//! The paper defines insiders as "all attacks that the owner is aware of and
//! approves, even if the attack comes from third parties (e.g. an untrusted
//! service, a racing workshop)", and outsiders as "attacks conducted by a third
//! party only, where the owner is oblivious (criminal attacks, thefts, black hat
//! attacks)".  The PSP re-tuning only applies to insider entries: "re-tuning the
//! standard model weight values on the outsider entries does not make sense".

use iso21434::threat::AttackerProfile;
use serde::{Deserialize, Serialize};
use std::fmt;
use vehicle::attack_surface::{AttackVector, ExternalInterface};

/// Whether an attack topic belongs to the insider or outsider super-category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackOrigin {
    /// Owner-approved attacks (tuning, defeat devices, reprogramming).
    Insider,
    /// Owner-oblivious attacks (theft, remote exploitation, espionage).
    Outsider,
}

impl AttackOrigin {
    /// Classifies an ISO/SAE-21434 attacker profile into the PSP super-category.
    #[must_use]
    pub fn from_profile(profile: AttackerProfile) -> Self {
        if profile.is_insider_category() {
            AttackOrigin::Insider
        } else {
            AttackOrigin::Outsider
        }
    }

    /// A structural heuristic for topics without an explicit profile: attacks whose
    /// entry interface is typically owner-assisted (OBD, USB, harness, debug port,
    /// ECU removal) are insider attacks; radio and network entries are outsider
    /// attacks unless stated otherwise.
    #[must_use]
    pub fn from_interface(interface: ExternalInterface) -> Self {
        if interface.typically_owner_assisted() {
            AttackOrigin::Insider
        } else {
            AttackOrigin::Outsider
        }
    }

    /// The same heuristic expressed on attack vectors: local and physical vectors
    /// default to insider, network and adjacent to outsider.
    #[must_use]
    pub fn from_vector(vector: AttackVector) -> Self {
        match vector {
            AttackVector::Local | AttackVector::Physical => AttackOrigin::Insider,
            AttackVector::Network | AttackVector::Adjacent => AttackOrigin::Outsider,
        }
    }

    /// Whether PSP re-tunes feasibility weights for this origin.
    #[must_use]
    pub fn is_retuned_by_psp(self) -> bool {
        self == AttackOrigin::Insider
    }
}

impl fmt::Display for AttackOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackOrigin::Insider => f.write_str("Insider"),
            AttackOrigin::Outsider => f.write_str("Outsider"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_map_to_the_paper_super_categories() {
        assert_eq!(
            AttackOrigin::from_profile(AttackerProfile::Rational),
            AttackOrigin::Insider
        );
        assert_eq!(
            AttackOrigin::from_profile(AttackerProfile::Insider),
            AttackOrigin::Insider
        );
        assert_eq!(
            AttackOrigin::from_profile(AttackerProfile::Local),
            AttackOrigin::Insider
        );
        assert_eq!(
            AttackOrigin::from_profile(AttackerProfile::Outsider),
            AttackOrigin::Outsider
        );
        assert_eq!(
            AttackOrigin::from_profile(AttackerProfile::Malicious),
            AttackOrigin::Outsider
        );
    }

    #[test]
    fn owner_assisted_interfaces_are_insider() {
        assert_eq!(
            AttackOrigin::from_interface(ExternalInterface::ObdPort),
            AttackOrigin::Insider
        );
        assert_eq!(
            AttackOrigin::from_interface(ExternalInterface::Cellular),
            AttackOrigin::Outsider
        );
        assert_eq!(
            AttackOrigin::from_interface(ExternalInterface::KeyFobRadio),
            AttackOrigin::Outsider
        );
    }

    #[test]
    fn vector_heuristic() {
        assert_eq!(
            AttackOrigin::from_vector(AttackVector::Local),
            AttackOrigin::Insider
        );
        assert_eq!(
            AttackOrigin::from_vector(AttackVector::Physical),
            AttackOrigin::Insider
        );
        assert_eq!(
            AttackOrigin::from_vector(AttackVector::Network),
            AttackOrigin::Outsider
        );
        assert_eq!(
            AttackOrigin::from_vector(AttackVector::Adjacent),
            AttackOrigin::Outsider
        );
    }

    #[test]
    fn only_insiders_are_retuned() {
        assert!(AttackOrigin::Insider.is_retuned_by_psp());
        assert!(!AttackOrigin::Outsider.is_retuned_by_psp());
    }

    #[test]
    fn display_labels() {
        assert_eq!(AttackOrigin::Insider.to_string(), "Insider");
        assert_eq!(AttackOrigin::Outsider.to_string(), "Outsider");
    }
}
