//! Error types for the PSP framework.

use std::fmt;

/// Errors produced by the PSP workflows.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PspError {
    /// The corpus query returned no posts for any configured keyword.
    EmptyEvidence {
        /// The scene that was queried.
        scene: String,
    },
    /// A threat scenario referenced by the caller has no keywords in the database.
    UnknownScenario {
        /// The scenario identifier.
        scenario: String,
    },
    /// A financial input was missing or non-positive.
    InvalidFinancialInput {
        /// The parameter name.
        parameter: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// Forwarded error from the ISO/SAE-21434 substrate.
    Tara(iso21434::Iso21434Error),
}

impl fmt::Display for PspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PspError::EmptyEvidence { scene } => {
                write!(f, "no social evidence found for scene `{scene}`")
            }
            PspError::UnknownScenario { scenario } => {
                write!(f, "no keywords registered for threat scenario `{scenario}`")
            }
            PspError::InvalidFinancialInput { parameter, detail } => {
                write!(f, "invalid financial input `{parameter}`: {detail}")
            }
            PspError::Tara(inner) => write!(f, "TARA error: {inner}"),
        }
    }
}

impl std::error::Error for PspError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PspError::Tara(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<iso21434::Iso21434Error> for PspError {
    fn from(value: iso21434::Iso21434Error) -> Self {
        PspError::Tara(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PspError::EmptyEvidence {
            scene: "excavator".into()
        }
        .to_string()
        .contains("excavator"));
        assert!(PspError::UnknownScenario {
            scenario: "x".into()
        }
        .to_string()
        .contains("x"));
        assert!(PspError::InvalidFinancialInput {
            parameter: "PPIA",
            detail: "no prices found".into()
        }
        .to_string()
        .contains("PPIA"));
    }

    #[test]
    fn tara_errors_are_wrapped_with_source() {
        use std::error::Error;
        let err: PspError =
            iso21434::Iso21434Error::MissingAttackPath { threat: "t".into() }.into();
        assert!(err.to_string().contains("TARA"));
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PspError>();
    }
}
