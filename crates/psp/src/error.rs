//! Error types for the PSP framework.
//!
//! [`PspError`] is the single top-level error surface: workflow errors,
//! forwarded ISO/SAE-21434 errors, signal-cache validation errors
//! ([`crate::engine::SignalCacheError`], via `From`) and the service
//! daemon's request errors all fold into it, so every
//! [`crate::service::ServiceResponse`] serializes exactly one error type.

use crate::engine::SignalCacheError;
use std::fmt;

/// Errors produced by the PSP workflows.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PspError {
    /// The corpus query returned no posts for any configured keyword.
    EmptyEvidence {
        /// The scene that was queried.
        scene: String,
    },
    /// A threat scenario referenced by the caller has no keywords in the database.
    UnknownScenario {
        /// The scenario identifier.
        scenario: String,
    },
    /// A financial input was missing or non-positive.
    InvalidFinancialInput {
        /// The parameter name.
        parameter: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// Forwarded error from the ISO/SAE-21434 substrate.
    Tara(iso21434::Iso21434Error),
    /// A persisted signal cache failed validation against the serving corpus.
    SignalCache(SignalCacheError),
    /// A service request named a keyword database not in the registry.
    UnknownDatabase {
        /// The database name requested.
        name: String,
    },
    /// A service request named a configuration not in the registry.
    UnknownConfig {
        /// The configuration name requested.
        name: String,
    },
    /// A service request could not be decoded or was structurally invalid.
    BadRequest {
        /// Human-readable detail.
        detail: String,
    },
    /// The service runtime has shut down and can accept no more work.
    ServiceStopped,
    /// A request panicked while being served.  The worker caught the unwind
    /// and survived; the panic message travels as detail so the client sees a
    /// structured failure instead of a hung ticket.
    Internal {
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// A `Schedule` request wrapped a request kind the scheduler refuses to
    /// run on a timer (state-mutating kinds like `Ingest`, or nested
    /// scheduling).
    NotSchedulable {
        /// The request kind that was rejected.
        request: &'static str,
    },
    /// A durability-plane request (`Checkpoint`) reached a service running
    /// without a data directory.
    NotDurable,
    /// The durability plane failed: a WAL append, checkpoint write or
    /// recovery step hit an I/O error (or an injected fault).
    Durability {
        /// Human-readable detail naming the failed operation.
        detail: String,
    },
    /// The admission queue in front of the worker pool is full.  The request
    /// was rejected *before* queueing so the service's latency stays bounded;
    /// clients should back off and retry.
    Overloaded {
        /// Requests already admitted and awaiting a worker when this one
        /// arrived.
        queued: usize,
        /// The admission queue's capacity.
        capacity: usize,
    },
    /// The socket server is at its connection cap; the new connection was
    /// answered with this error and closed without being served.
    ConnectionLimit {
        /// Connections open when the new one arrived.
        open: usize,
        /// The configured connection cap.
        cap: usize,
    },
    /// A wire line exceeded the configured maximum length and was discarded
    /// instead of buffered unboundedly.
    LineTooLong {
        /// The configured per-line byte limit.
        limit: usize,
    },
}

impl PspError {
    /// A stable kebab-case discriminant for the wire form of service errors
    /// — clients match on this instead of parsing `Display` text.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            PspError::EmptyEvidence { .. } => "empty-evidence",
            PspError::UnknownScenario { .. } => "unknown-scenario",
            PspError::InvalidFinancialInput { .. } => "invalid-financial-input",
            PspError::Tara(_) => "tara",
            PspError::SignalCache(_) => "signal-cache",
            PspError::UnknownDatabase { .. } => "unknown-database",
            PspError::UnknownConfig { .. } => "unknown-config",
            PspError::BadRequest { .. } => "bad-request",
            PspError::ServiceStopped => "service-stopped",
            PspError::Internal { .. } => "internal-error",
            PspError::NotSchedulable { .. } => "not-schedulable",
            PspError::NotDurable => "not-durable",
            PspError::Durability { .. } => "durability",
            PspError::Overloaded { .. } => "overloaded",
            PspError::ConnectionLimit { .. } => "connection-limit",
            PspError::LineTooLong { .. } => "line-too-long",
        }
    }
}

impl fmt::Display for PspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PspError::EmptyEvidence { scene } => {
                write!(f, "no social evidence found for scene `{scene}`")
            }
            PspError::UnknownScenario { scenario } => {
                write!(f, "no keywords registered for threat scenario `{scenario}`")
            }
            PspError::InvalidFinancialInput { parameter, detail } => {
                write!(f, "invalid financial input `{parameter}`: {detail}")
            }
            PspError::Tara(inner) => write!(f, "TARA error: {inner}"),
            PspError::SignalCache(inner) => write!(f, "signal cache error: {inner}"),
            PspError::UnknownDatabase { name } => {
                write!(f, "no keyword database registered under `{name}`")
            }
            PspError::UnknownConfig { name } => {
                write!(f, "no configuration registered under `{name}`")
            }
            PspError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            PspError::ServiceStopped => write!(f, "service runtime has shut down"),
            PspError::Internal { detail } => {
                write!(f, "internal service error (request panicked): {detail}")
            }
            PspError::NotSchedulable { request } => {
                write!(f, "request kind `{request}` cannot be scheduled")
            }
            PspError::NotDurable => {
                write!(f, "service is running without a data directory")
            }
            PspError::Durability { detail } => write!(f, "durability error: {detail}"),
            PspError::Overloaded { queued, capacity } => write!(
                f,
                "service overloaded: admission queue full ({queued}/{capacity}); retry later"
            ),
            PspError::ConnectionLimit { open, cap } => {
                write!(f, "connection limit reached ({open}/{cap} open)")
            }
            PspError::LineTooLong { limit } => {
                write!(f, "wire line exceeds the {limit}-byte limit")
            }
        }
    }
}

impl std::error::Error for PspError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PspError::Tara(inner) => Some(inner),
            PspError::SignalCache(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<iso21434::Iso21434Error> for PspError {
    fn from(value: iso21434::Iso21434Error) -> Self {
        PspError::Tara(value)
    }
}

impl From<SignalCacheError> for PspError {
    fn from(value: SignalCacheError) -> Self {
        PspError::SignalCache(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PspError::EmptyEvidence {
            scene: "excavator".into()
        }
        .to_string()
        .contains("excavator"));
        assert!(PspError::UnknownScenario {
            scenario: "x".into()
        }
        .to_string()
        .contains("x"));
        assert!(PspError::InvalidFinancialInput {
            parameter: "PPIA",
            detail: "no prices found".into()
        }
        .to_string()
        .contains("PPIA"));
    }

    #[test]
    fn tara_errors_are_wrapped_with_source() {
        use std::error::Error;
        let err: PspError =
            iso21434::Iso21434Error::MissingAttackPath { threat: "t".into() }.into();
        assert!(err.to_string().contains("TARA"));
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PspError>();
    }

    #[test]
    fn signal_cache_errors_fold_in_with_source() {
        use std::error::Error;
        let err: PspError = SignalCacheError::LexiconMismatch.into();
        assert_eq!(err.kind(), "signal-cache");
        assert!(err.to_string().contains("signal cache"));
        assert!(err.source().is_some());
    }

    #[test]
    fn service_variants_display_and_kind() {
        let db = PspError::UnknownDatabase { name: "x".into() };
        assert_eq!(db.kind(), "unknown-database");
        assert!(db.to_string().contains("x"));
        let config = PspError::UnknownConfig { name: "y".into() };
        assert_eq!(config.kind(), "unknown-config");
        assert!(config.to_string().contains("y"));
        let bad = PspError::BadRequest {
            detail: "not json".into(),
        };
        assert_eq!(bad.kind(), "bad-request");
        assert!(bad.to_string().contains("not json"));
        assert_eq!(PspError::ServiceStopped.kind(), "service-stopped");
        let internal = PspError::Internal {
            detail: "index out of bounds".into(),
        };
        assert_eq!(internal.kind(), "internal-error");
        assert!(internal.to_string().contains("index out of bounds"));
        assert!(internal.to_string().contains("panicked"));
        let sched = PspError::NotSchedulable { request: "Ingest" };
        assert_eq!(sched.kind(), "not-schedulable");
        assert!(sched.to_string().contains("Ingest"));
        assert_eq!(PspError::NotDurable.kind(), "not-durable");
        assert!(PspError::NotDurable.to_string().contains("data directory"));
        let durability = PspError::Durability {
            detail: "fsync wal.log failed".into(),
        };
        assert_eq!(durability.kind(), "durability");
        assert!(durability.to_string().contains("fsync wal.log failed"));
        let overloaded = PspError::Overloaded {
            queued: 128,
            capacity: 128,
        };
        assert_eq!(overloaded.kind(), "overloaded");
        assert!(overloaded.to_string().contains("128/128"));
        let conn = PspError::ConnectionLimit { open: 64, cap: 64 };
        assert_eq!(conn.kind(), "connection-limit");
        assert!(conn.to_string().contains("64/64"));
        let long = PspError::LineTooLong { limit: 1_048_576 };
        assert_eq!(long.kind(), "line-too-long");
        assert!(long.to_string().contains("1048576"));
    }

    #[test]
    fn kinds_are_unique_per_variant() {
        let kinds = [
            PspError::EmptyEvidence { scene: "s".into() }.kind(),
            PspError::UnknownScenario {
                scenario: "s".into(),
            }
            .kind(),
            PspError::InvalidFinancialInput {
                parameter: "p",
                detail: "d".into(),
            }
            .kind(),
            PspError::Tara(iso21434::Iso21434Error::MissingAttackPath { threat: "t".into() })
                .kind(),
            PspError::SignalCache(SignalCacheError::LexiconMismatch).kind(),
            PspError::UnknownDatabase { name: "n".into() }.kind(),
            PspError::UnknownConfig { name: "n".into() }.kind(),
            PspError::BadRequest { detail: "d".into() }.kind(),
            PspError::ServiceStopped.kind(),
            PspError::Internal { detail: "d".into() }.kind(),
            PspError::NotSchedulable { request: "Ingest" }.kind(),
            PspError::NotDurable.kind(),
            PspError::Durability { detail: "d".into() }.kind(),
            PspError::Overloaded {
                queued: 1,
                capacity: 1,
            }
            .kind(),
            PspError::ConnectionLimit { open: 1, cap: 1 }.kind(),
            PspError::LineTooLong { limit: 1 }.kind(),
        ];
        let unique: std::collections::BTreeSet<_> = kinds.iter().collect();
        assert_eq!(unique.len(), kinds.len());
    }
}
