//! The shared, indexed, parallel SAI scoring engine.
//!
//! The PSP hot path (paper Figure 7, blocks 2–6) queries the social corpus once
//! per attack keyword and folds the matching posts into SAI scores.  The naive
//! implementation rescans the corpus *and re-runs the text-mining pipeline* for
//! every keyword — O(keywords × posts) pipeline invocations, which also repeats
//! per analysis window in monitoring and time-window runs.
//!
//! [`ScoringEngine`] amortises all of that:
//!
//! * a [`CorpusIndex`] answers each keyword query from inverted structures
//!   instead of a scan;
//! * the per-post text signals (intent score, mined prices) and author
//!   credibility are memoised **at most once per post** — lazily, so posts no
//!   query ever reaches never pay for the text pipeline — and shared by every
//!   subsequent query and window;
//! * SAI lists for many keyword profiles — and many configurations over the
//!   same corpus — fan out over worker threads with `rayon`
//!   ([`ScoringEngine::precompute_signals`] warms the whole cache in parallel
//!   for throughput-critical serving).
//!
//! The engine is *exactly* equivalent to the naive path: candidate ids come
//! back in ascending post order, so every sum is folded in the same order the
//! linear scan would use, producing bit-identical `SaiList`s (pinned down by
//! the `psp-suite` property tests).
//!
//! All former callers of `SaiList::compute` route through here:
//! [`crate::sai::SaiList::compute`] delegates to a one-shot engine, while
//! [`crate::workflow::PspWorkflow`], [`crate::monitoring::MonitoringSeries`]
//! and [`crate::timewindow::compare_windows`] build one engine per corpus and
//! reuse it across keywords and windows.

use crate::config::PspConfig;
use crate::keyword_db::{KeywordDatabase, KeywordProfile};
use crate::sai::{SaiEntry, SaiList};
use rayon::prelude::*;
use socialsim::corpus::Corpus;
use socialsim::index::CorpusIndex;
use socialsim::query::Query;
use std::sync::OnceLock;
use textmine::pipeline::TextPipeline;

/// Per-post evidence computed at most once per post, on first use.
#[derive(Debug, Clone)]
struct PostSignals {
    /// View count.
    views: u64,
    /// Active interactions (likes + replies + reposts).
    interactions: u64,
    /// Text-mined intent score.
    intent: f64,
    /// Prices mined from the text (EUR), in extraction order.
    prices: Vec<f64>,
    /// Author credibility in `[0, 1]`.
    credibility: f64,
    /// Interactions per view.
    interaction_rate: f64,
}

/// An indexed, parallel SAI scoring engine bound to one corpus snapshot.
///
/// Build it once per corpus ([`ScoringEngine::new`]), then compute as many SAI
/// lists as needed — per keyword database, per configuration, per analysis
/// window — without ever rescanning posts or re-running the text pipeline.
#[derive(Debug)]
pub struct ScoringEngine<'c> {
    corpus: &'c Corpus,
    index: CorpusIndex,
    pipeline: TextPipeline,
    /// Lazily initialised per-post signals: a post pays for the text-mining
    /// pipeline at most once, and only if some query actually reaches it.
    signals: Vec<OnceLock<PostSignals>>,
}

impl<'c> ScoringEngine<'c> {
    /// Builds the inverted index; per-post text signals are computed lazily on
    /// first use (see [`precompute_signals`](Self::precompute_signals)).
    #[must_use]
    pub fn new(corpus: &'c Corpus) -> Self {
        let index = CorpusIndex::build(corpus);
        let mut signals = Vec::new();
        signals.resize_with(corpus.posts().len(), OnceLock::new);
        Self {
            corpus,
            index,
            pipeline: TextPipeline::new(),
            signals,
        }
    }

    /// The (memoised) signals of one post.
    fn signal(&self, id: u32) -> &PostSignals {
        self.signals[id as usize].get_or_init(|| {
            let post = &self.corpus.posts()[id as usize];
            let analysis = self.pipeline.analyze(post.text());
            PostSignals {
                views: post.engagement().views,
                interactions: post.engagement().interactions(),
                intent: analysis.intent.score,
                prices: analysis.prices,
                credibility: post.author().credibility(),
                interaction_rate: post.engagement().interaction_rate(),
            }
        })
    }

    /// Eagerly materialises the signals of every post, fanning out over worker
    /// threads.  Useful before a throughput-critical serving phase; otherwise
    /// signals fill in lazily as queries touch posts.
    pub fn precompute_signals(&self) {
        let ids: Vec<u32> = (0..self.signals.len() as u32).collect();
        let _: Vec<()> = ids
            .par_iter()
            .map(|id| {
                self.signal(*id);
            })
            .collect();
    }

    /// The corpus the engine is bound to.
    #[must_use]
    pub fn corpus(&self) -> &'c Corpus {
        self.corpus
    }

    /// The underlying inverted index.
    #[must_use]
    pub fn index(&self) -> &CorpusIndex {
        &self.index
    }

    /// The query the SAI computation issues for one keyword profile under one
    /// configuration (hashtag OR keyword content, conjunctive scene filters).
    #[must_use]
    pub fn profile_query(profile: &KeywordProfile, config: &PspConfig) -> Query {
        let mut query = Query::new()
            .with_hashtag(profile.keyword.as_str())
            .with_keyword(profile.keyword.as_str())
            .in_region(config.region)
            .about(config.application);
        if let Some(window) = config.window {
            query = query.within(window);
        }
        query
    }

    /// Scores one keyword profile into an (unnormalised) SAI entry.
    fn score_profile(&self, profile: &KeywordProfile, config: &PspConfig) -> SaiEntry {
        let query = Self::profile_query(profile, config);
        let ids = self.index.query(self.corpus, &query);
        self.aggregate(profile, config, ids.into_iter())
    }

    /// Folds a set of candidate post ids (ascending) into an SAI entry.
    fn aggregate(
        &self,
        profile: &KeywordProfile,
        config: &PspConfig,
        ids: impl Iterator<Item = u32>,
    ) -> SaiEntry {
        let weights = config.sai_weights;
        let mut posts = 0_usize;
        let mut views = 0_u64;
        let mut interactions = 0_u64;
        let mut intent = 0.0_f64;
        let mut prices = Vec::new();
        for id in ids {
            let signal = self.signal(id);
            if let Some(threshold) = config.min_author_credibility {
                // Same rule as the naive path: credible author, or organic
                // engagement above 1% interaction rate.
                if signal.credibility < threshold && signal.interaction_rate <= 0.01 {
                    continue;
                }
            }
            posts += 1;
            views += signal.views;
            interactions += signal.interactions;
            intent += signal.intent;
            prices.extend_from_slice(&signal.prices);
        }
        let sai = weights.view_weight * views as f64
            + weights.interaction_weight * interactions as f64
            + weights.post_weight * posts as f64
            + weights.intent_weight * intent;

        SaiEntry {
            keyword: profile.keyword.clone(),
            scenario: profile.scenario.clone(),
            vector: profile.vector,
            origin: profile.origin,
            posts,
            views,
            interactions,
            intent,
            prices,
            sai,
            probability: 0.0,
        }
    }

    /// Computes the full SAI list for a keyword database and configuration in
    /// one indexed pass, fanning out over keyword profiles with `rayon`.
    #[must_use]
    pub fn sai_list(&self, db: &KeywordDatabase, config: &PspConfig) -> SaiList {
        let profiles: Vec<&KeywordProfile> = db.iter().collect();
        let entries: Vec<SaiEntry> = profiles
            .par_iter()
            .map(|profile| self.score_profile(profile, config))
            .collect();
        SaiList::from_entries(entries)
    }

    /// Computes one SAI list per configuration against the same corpus — the
    /// batch entry point for window sweeps (monitoring, Figure 9 comparisons).
    ///
    /// A keyword's content candidates do not depend on the configuration, so
    /// they are resolved once per profile and only the cheap metadata filter
    /// (region / application / window) and aggregation re-run per
    /// configuration.  Always returns exactly one list per configuration
    /// (empty lists for an empty database).
    #[must_use]
    pub fn sai_lists(&self, db: &KeywordDatabase, configs: &[PspConfig]) -> Vec<SaiList> {
        let profiles: Vec<&KeywordProfile> = db.iter().collect();
        if configs.is_empty() {
            return Vec::new();
        }
        if profiles.is_empty() {
            return configs
                .iter()
                .map(|_| SaiList::from_entries(Vec::new()))
                .collect();
        }
        // One parallel job per profile: resolve the (config-independent)
        // content candidates once, then score every configuration against them.
        let per_profile: Vec<Vec<SaiEntry>> = profiles
            .par_iter()
            .map(|profile| {
                let content_query = Self::profile_query(profile, &configs[0]);
                let candidates = self.index.content_candidates(self.corpus, &content_query);
                configs
                    .iter()
                    .map(|config| {
                        let query = Self::profile_query(profile, config);
                        self.aggregate(
                            profile,
                            config,
                            candidates
                                .iter()
                                .copied()
                                .filter(|id| self.index.matches_metadata(*id, &query)),
                        )
                    })
                    .collect()
            })
            .collect();
        // Transpose the profile-major grid into one entry list per config,
        // preserving keyword-database order within each list.
        let mut per_config: Vec<Vec<SaiEntry>> = configs
            .iter()
            .map(|_| Vec::with_capacity(per_profile.len()))
            .collect();
        for row in per_profile {
            for (c, entry) in row.into_iter().enumerate() {
                per_config[c].push(entry);
            }
        }
        per_config.into_iter().map(SaiList::from_entries).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialsim::scenario;
    use socialsim::time::DateWindow;

    #[test]
    fn engine_matches_the_naive_reference_exactly() {
        let corpus = scenario::passenger_car_europe(42);
        let db = KeywordDatabase::passenger_car_seed();
        let config = PspConfig::passenger_car_europe();
        let engine = ScoringEngine::new(&corpus);
        assert_eq!(
            engine.sai_list(&db, &config),
            SaiList::compute_naive(&corpus, &db, &config)
        );
    }

    #[test]
    fn engine_matches_naive_with_window_and_filter() {
        let corpus = scenario::excavator_europe(7);
        let db = KeywordDatabase::excavator_seed();
        let config = PspConfig::excavator_europe()
            .with_window(DateWindow::years(2020, 2022))
            .with_poisoning_filter(0.25);
        let engine = ScoringEngine::new(&corpus);
        assert_eq!(
            engine.sai_list(&db, &config),
            SaiList::compute_naive(&corpus, &db, &config)
        );
    }

    #[test]
    fn batch_lists_match_individual_lists() {
        let corpus = scenario::passenger_car_europe(42);
        let db = KeywordDatabase::passenger_car_seed();
        let engine = ScoringEngine::new(&corpus);
        let configs: Vec<PspConfig> = (2018..2023)
            .map(|y| PspConfig::passenger_car_europe().with_window(DateWindow::years(y, y + 1)))
            .collect();
        let batch = engine.sai_lists(&db, &configs);
        assert_eq!(batch.len(), configs.len());
        for (config, list) in configs.iter().zip(&batch) {
            assert_eq!(*list, engine.sai_list(&db, config));
        }
    }

    #[test]
    fn empty_corpus_and_empty_db_degrade_gracefully() {
        let corpus = Corpus::new();
        let engine = ScoringEngine::new(&corpus);
        let sai = engine.sai_list(
            &KeywordDatabase::excavator_seed(),
            &PspConfig::excavator_europe(),
        );
        assert!(sai
            .entries()
            .iter()
            .all(|e| e.sai == 0.0 && e.probability == 0.0));
        let none = engine.sai_list(&KeywordDatabase::new(), &PspConfig::excavator_europe());
        assert!(none.is_empty());
        assert!(engine.sai_lists(&KeywordDatabase::new(), &[]).is_empty());
    }

    #[test]
    fn batch_returns_one_list_per_config_even_for_an_empty_database() {
        let corpus = scenario::excavator_europe(7);
        let engine = ScoringEngine::new(&corpus);
        let configs = [
            PspConfig::excavator_europe(),
            PspConfig::excavator_europe().with_window(DateWindow::years(2020, 2021)),
        ];
        let lists = engine.sai_lists(&KeywordDatabase::new(), &configs);
        assert_eq!(lists.len(), configs.len());
        assert!(lists.iter().all(SaiList::is_empty));
    }
}
