//! Time-window analysis and trend-inversion detection (paper Figure 9-B vs 9-C).
//!
//! "The social sentiment analysis time window plays a crucial role in the PSP
//! framework's analysis. […] The trend inversion highlighted by PSP began last year
//! […] reprogramming via a physical attack is no longer mainstream, and attackers
//! are more likely to opt for a local attack via OBD."

use crate::config::PspConfig;
use crate::engine::{ScoringEngine, WindowAxis};
use crate::keyword_db::KeywordDatabase;
use crate::weights::WeightGenerator;
use iso21434::feasibility::attack_vector::AttackVectorTable;
use serde::{Deserialize, Serialize};
use socialsim::corpus::Corpus;
use socialsim::time::DateWindow;
use vehicle::attack_surface::AttackVector;

/// The comparison of one scenario across two analysis windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowComparison {
    /// The scenario analysed.
    pub scenario: String,
    /// The window used for the "historical" run (None = full history).
    pub baseline_window: Option<DateWindow>,
    /// The window used for the "recent" run.
    pub recent_window: DateWindow,
    /// Vector shares in the baseline run.
    pub baseline_shares: Vec<(AttackVector, f64)>,
    /// Vector shares in the recent run.
    pub recent_shares: Vec<(AttackVector, f64)>,
    /// The insider table generated from the baseline run (Figure 9-B).
    pub baseline_table: AttackVectorTable,
    /// The insider table generated from the recent run (Figure 9-C).
    pub recent_table: AttackVectorTable,
}

impl WindowComparison {
    /// The dominant vector (largest share) of the baseline run.
    #[must_use]
    pub fn baseline_dominant(&self) -> AttackVector {
        dominant(&self.baseline_shares)
    }

    /// The dominant vector of the recent run.
    #[must_use]
    pub fn recent_dominant(&self) -> AttackVector {
        dominant(&self.recent_shares)
    }

    /// Whether the two windows disagree on the dominant vector — the trend
    /// inversion the paper highlights.
    #[must_use]
    pub fn trend_inverted(&self) -> bool {
        self.baseline_dominant() != self.recent_dominant()
    }
}

fn dominant(shares: &[(AttackVector, f64)]) -> AttackVector {
    shares
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(v, _)| *v)
        .unwrap_or(AttackVector::Physical)
}

/// Runs the same analysis over two windows and compares them.
#[must_use]
pub fn compare_windows(
    corpus: &Corpus,
    db: &KeywordDatabase,
    base_config: &PspConfig,
    scenario: &str,
    recent_window: DateWindow,
) -> WindowComparison {
    // Both windows are answered by one engine through one sweep plan: the
    // corpus is indexed once and the (window-invariant) candidate columns are
    // projected once, then each window resolves against them.
    let engine = ScoringEngine::new(corpus);
    comparison_from(
        scenario,
        base_config.window,
        recent_window,
        engine.sai_windows(
            db,
            base_config,
            &WindowAxis::spans(&[base_config.window, Some(recent_window)]),
        ),
    )
}

/// [`compare_windows`] against a warm engine — the streaming variant: the
/// corpus the engine has ingested so far is compared across the two windows
/// without rebuilding any index or recomputing memoised signals.  Produces
/// exactly what [`compare_windows`] over the engine's corpus would.
///
/// Generic over the engine shape: pass a
/// [`LiveEngine`](crate::engine::LiveEngine) for the single warm index, or a
/// [`ShardedEngine`](crate::engine::ShardedEngine) to answer both windows from
/// per-shard indexes (time shards outside either window are pruned) with a
/// bit-identical result.
#[must_use]
pub fn compare_windows_live<E: crate::engine::SaiScorer>(
    engine: &E,
    db: &KeywordDatabase,
    base_config: &PspConfig,
    scenario: &str,
    recent_window: DateWindow,
) -> WindowComparison {
    comparison_from(
        scenario,
        base_config.window,
        recent_window,
        engine.sai_windows(
            db,
            base_config,
            &WindowAxis::spans(&[base_config.window, Some(recent_window)]),
        ),
    )
}

/// Folds the two windowed SAI lists into the comparison — shared by the
/// snapshot and live entry points so they are the same computation by
/// construction.
fn comparison_from(
    scenario: &str,
    baseline_window: Option<DateWindow>,
    recent_window: DateWindow,
    lists: Vec<crate::sai::SaiList>,
) -> WindowComparison {
    let generator = WeightGenerator::new();
    let mut lists = lists.into_iter();
    let baseline_sai = lists.next().expect("baseline window scored");
    let recent_sai = lists.next().expect("recent window scored");

    WindowComparison {
        scenario: scenario.to_string(),
        baseline_window,
        recent_window,
        baseline_shares: baseline_sai.vector_shares(scenario),
        recent_shares: recent_sai.vector_shares(scenario),
        baseline_table: generator.insider_table(&baseline_sai, scenario),
        recent_table: generator.insider_table(&recent_sai, scenario),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iso21434::feasibility::AttackFeasibilityRating;
    use socialsim::scenario;

    fn comparison() -> WindowComparison {
        let corpus = scenario::passenger_car_europe(42);
        compare_windows(
            &corpus,
            &KeywordDatabase::passenger_car_seed(),
            &PspConfig::passenger_car_europe(),
            "ecm-reprogramming",
            DateWindow::years(2021, 2023),
        )
    }

    #[test]
    fn paper_figure_9_trend_inversion_is_detected() {
        let cmp = comparison();
        assert_eq!(cmp.baseline_dominant(), AttackVector::Physical);
        assert_eq!(cmp.recent_dominant(), AttackVector::Local);
        assert!(cmp.trend_inverted());
    }

    #[test]
    fn tables_reflect_the_inversion() {
        let cmp = comparison();
        assert_eq!(
            cmp.baseline_table.rating(AttackVector::Physical),
            AttackFeasibilityRating::High
        );
        assert_eq!(
            cmp.recent_table.rating(AttackVector::Local),
            AttackFeasibilityRating::High
        );
        assert!(!cmp.baseline_table.same_ratings_as(&cmp.recent_table));
    }

    #[test]
    fn stable_scenarios_do_not_invert() {
        let corpus = scenario::passenger_car_europe(42);
        let cmp = compare_windows(
            &corpus,
            &KeywordDatabase::passenger_car_seed(),
            &PspConfig::passenger_car_europe(),
            "emission-defeat",
            DateWindow::years(2021, 2023),
        );
        assert!(
            !cmp.trend_inverted(),
            "emission defeat stays Local in both windows"
        );
    }

    #[test]
    fn shares_are_kept_for_both_windows() {
        let cmp = comparison();
        assert_eq!(cmp.baseline_shares.len(), 4);
        assert_eq!(cmp.recent_shares.len(), 4);
        let recent_total: f64 = cmp.recent_shares.iter().map(|(_, s)| s).sum();
        assert!((recent_total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let cmp = comparison();
        let json = serde_json::to_string(&cmp).unwrap();
        assert_eq!(
            cmp,
            serde_json::from_str::<WindowComparison>(&json).unwrap()
        );
    }

    #[test]
    fn live_comparison_matches_the_snapshot_comparison() {
        let corpus = scenario::passenger_car_europe(42);
        let posts = corpus.posts().to_vec();
        let mut engine = crate::engine::LiveEngine::new(socialsim::corpus::Corpus::new());
        for chunk in posts.chunks(113) {
            engine.ingest(chunk.to_vec());
        }
        let live = compare_windows_live(
            &engine,
            &KeywordDatabase::passenger_car_seed(),
            &PspConfig::passenger_car_europe(),
            "ecm-reprogramming",
            DateWindow::years(2021, 2023),
        );
        assert_eq!(live, comparison());
        assert!(live.trend_inverted());
    }

    #[test]
    fn sharded_comparison_matches_the_snapshot_comparison() {
        let corpus = scenario::passenger_car_europe(42);
        let sharded =
            crate::engine::ShardedEngine::new(corpus, socialsim::index::ShardSpec::ByTimeYears(2));
        let live = compare_windows_live(
            &sharded,
            &KeywordDatabase::passenger_car_seed(),
            &PspConfig::passenger_car_europe(),
            "ecm-reprogramming",
            DateWindow::years(2021, 2023),
        );
        assert_eq!(live, comparison());
    }
}
