//! PSP configuration (paper Figure 7, block 1: target application input).

use serde::{Deserialize, Serialize};
use socialsim::post::{Region, TargetApplication};
use socialsim::time::DateWindow;

/// Weights used when combining post evidence into a Social Attraction Index score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaiWeights {
    /// Weight of one view.
    pub view_weight: f64,
    /// Weight of one interaction (like, reply, repost).
    pub interaction_weight: f64,
    /// Weight of one matching post (presence signal independent of reach).
    pub post_weight: f64,
    /// Weight of the text-mined intent score.
    pub intent_weight: f64,
}

impl Default for SaiWeights {
    fn default() -> Self {
        Self {
            view_weight: 0.01,
            interaction_weight: 1.0,
            post_weight: 5.0,
            intent_weight: 2.0,
        }
    }
}

impl SaiWeights {
    /// Weights that only count raw audience size (used by the SAI ablation bench).
    #[must_use]
    pub fn views_only() -> Self {
        Self {
            view_weight: 1.0,
            interaction_weight: 0.0,
            post_weight: 0.0,
            intent_weight: 0.0,
        }
    }

    /// Weights that only count active engagement.
    #[must_use]
    pub fn interactions_only() -> Self {
        Self {
            view_weight: 0.0,
            interaction_weight: 1.0,
            post_weight: 0.0,
            intent_weight: 0.0,
        }
    }
}

/// The full PSP configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PspConfig {
    /// The target application (cars, trucks, agriculture machines, …).
    pub application: TargetApplication,
    /// The region of interest.
    pub region: Region,
    /// Optional analysis time window (None = full history, Figure 9-B;
    /// Some(2021..) = the recent window of Figure 9-C).
    pub window: Option<DateWindow>,
    /// SAI scoring weights.
    pub sai_weights: SaiWeights,
    /// Whether the keyword auto-learning step (Figure 7, block 5) runs.
    pub keyword_learning: bool,
    /// Minimum co-occurrence support for a learned keyword.
    pub learning_min_support: usize,
    /// Minimum author credibility for a post to be counted; `None` disables the
    /// poisoning filter.
    pub min_author_credibility: Option<f64>,
}

impl PspConfig {
    /// A configuration for the given scene with default weights, learning enabled
    /// and no poisoning filter.
    #[must_use]
    pub fn new(application: TargetApplication, region: Region) -> Self {
        Self {
            application,
            region,
            window: None,
            sai_weights: SaiWeights::default(),
            keyword_learning: true,
            learning_min_support: 3,
            min_author_credibility: None,
        }
    }

    /// The passenger-car / Europe scene of the ECM-reprogramming case study.
    #[must_use]
    pub fn passenger_car_europe() -> Self {
        Self::new(TargetApplication::PassengerCar, Region::Europe)
    }

    /// The excavator / Europe scene of the financial case study.
    #[must_use]
    pub fn excavator_europe() -> Self {
        Self::new(TargetApplication::Excavator, Region::Europe)
    }

    /// Restricts the analysis to a time window (builder style).
    #[must_use]
    pub fn with_window(mut self, window: DateWindow) -> Self {
        self.window = Some(window);
        self
    }

    /// Overrides the SAI weights.
    #[must_use]
    pub fn with_weights(mut self, weights: SaiWeights) -> Self {
        self.sai_weights = weights;
        self
    }

    /// Enables or disables keyword learning.
    #[must_use]
    pub fn with_learning(mut self, enabled: bool) -> Self {
        self.keyword_learning = enabled;
        self
    }

    /// Enables the poisoning filter with the given credibility threshold.
    #[must_use]
    pub fn with_poisoning_filter(mut self, min_credibility: f64) -> Self {
        self.min_author_credibility = Some(min_credibility);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_favour_interactions_over_views() {
        let w = SaiWeights::default();
        assert!(w.interaction_weight > w.view_weight);
        assert!(w.post_weight > 0.0);
    }

    #[test]
    fn scene_presets() {
        let car = PspConfig::passenger_car_europe();
        assert_eq!(car.application, TargetApplication::PassengerCar);
        assert_eq!(car.region, Region::Europe);
        let digger = PspConfig::excavator_europe();
        assert_eq!(digger.application, TargetApplication::Excavator);
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = PspConfig::passenger_car_europe()
            .with_window(DateWindow::years(2021, 2023))
            .with_weights(SaiWeights::views_only())
            .with_learning(false)
            .with_poisoning_filter(0.3);
        assert!(cfg.window.is_some());
        assert_eq!(cfg.sai_weights, SaiWeights::views_only());
        assert!(!cfg.keyword_learning);
        assert_eq!(cfg.min_author_credibility, Some(0.3));
    }

    #[test]
    fn ablation_weight_presets_are_degenerate_on_purpose() {
        assert_eq!(SaiWeights::views_only().interaction_weight, 0.0);
        assert_eq!(SaiWeights::interactions_only().view_weight, 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = PspConfig::excavator_europe().with_window(DateWindow::years(2020, 2023));
        let json = serde_json::to_string(&cfg).unwrap();
        assert_eq!(cfg, serde_json::from_str::<PspConfig>(&json).unwrap());
    }
}
