//! The PSP (PUNCH Softronix / Politecnico di Torino) dynamic TARA framework.
//!
//! This crate is the paper's primary contribution: a non-intrusive, dynamic layer on
//! top of the static ISO/SAE-21434 attack-feasibility models.  It works in two
//! distinct ways (paper Section III):
//!
//! 1. **Social-evidence-driven weight tuning** — the workflow of paper Figure 7:
//!    query a social corpus for attack keywords ([`keyword_db`]), compute the
//!    Social Attraction Index per threat topic ([`sai`]), split the entries into
//!    insider and outsider attacks ([`classify`]), learn new keywords for the next
//!    run ([`learning`]), and regenerate the G.9 attack-vector feasibility table
//!    with socially derived weights for insider threats ([`weights`],
//!    [`workflow`]).  [`timewindow`] adds the "since-2021" analysis of Figure 9-C.
//! 2. **Financial attack-feasibility model** — the workflow of paper Figure 10:
//!    estimate the number of potential attackers (`PAE`), mine the purchase price
//!    per insider attack (`PPIA`), compute the market value (`MV`, Equation 1), the
//!    break-even point (`BEP`, Equation 3) and the investment bound (`FC`,
//!    Equations 4–5), then map the result onto a feasibility rating
//!    ([`financial`]).
//!
//! [`dynamic_tara`] plugs the tuned weight tables back into the `iso21434` TARA
//! engine so a whole item analysis can be re-run "statically vs dynamically", and
//! [`report`] bundles everything into one serialisable artefact.
//!
//! All corpus scoring flows through [`engine::ScoringEngine`], which indexes
//! the corpus once, precomputes per-post text signals in parallel, and answers
//! every keyword/window query from the index instead of rescanning posts.  For
//! corpora that keep growing while being served, [`engine::LiveEngine`] adds a
//! streaming ingestion path — appends extend the index and signal cache in
//! place — and [`monitoring::LiveMonitor`] interleaves ingestion with
//! sliding-window re-evaluation on that one warm engine.  At fleet scale,
//! [`engine::ShardedEngine`] partitions the corpus by time range or region
//! (`socialsim::index::ShardSpec`), scores one engine core per shard in
//! parallel with window/region pruning, and merges per-shard partial evidence
//! into SAI lists bit-identical to the single-engine path;
//! [`monitoring::ShardedMonitor`] runs the monitoring loop on that sharded
//! engine.  [`service::TaraService`] puts any of these engine shapes behind a
//! protocol-agnostic request/response surface with snapshot isolation —
//! concurrent score/sweep/matrix requests each run against one immutable,
//! generation-stamped engine snapshot while ingest publishes the next
//! generation — served either synchronously or on a built-in worker pool
//! (see `examples/tara_daemon.rs` for the stdin line-JSON daemon).
//!
//! # Example
//!
//! ```
//! use psp::config::PspConfig;
//! use psp::keyword_db::KeywordDatabase;
//! use psp::workflow::PspWorkflow;
//! use socialsim::scenario;
//!
//! let corpus = scenario::passenger_car_europe(42);
//! let config = PspConfig::passenger_car_europe();
//! let db = KeywordDatabase::passenger_car_seed();
//! let outcome = PspWorkflow::new(config, db).run(&corpus);
//! let table = outcome.insider_table("ecm-reprogramming").expect("scenario present");
//! // With the full history the physical vector dominates ECM reprogramming.
//! assert_eq!(table.ranking()[0], vehicle::attack_surface::AttackVector::Physical);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod config;
pub mod dynamic_tara;
pub mod engine;
pub mod error;
pub mod financial;
pub mod keyword_db;
pub mod learning;
pub mod monitoring;
pub mod report;
pub mod sai;
pub mod service;
pub mod timewindow;
pub mod weights;
pub mod workflow;

pub use classify::AttackOrigin;
pub use config::{PspConfig, SaiWeights};
pub use engine::{
    CellId, IngestReceipt, LiveEngine, MatrixResults, MatrixSpec, SaiScorer, ScoringEngine,
    ShardedEngine, StreamingScorer, WindowAxis,
};
pub use error::PspError;
pub use financial::{FinancialAssessment, FinancialInputs};
pub use keyword_db::{KeywordDatabase, KeywordProfile};
pub use report::PspReport;
pub use sai::{SaiEntry, SaiList};
pub use service::{ServiceRegistry, ServiceRequest, ServiceResponse, TaraService};
pub use weights::{WeightGenerator, WeightMapping};
pub use workflow::{PspOutcome, PspWorkflow};
