//! Vehicle sales records (the `VS` term of Equation 2).

use serde::{Deserialize, Serialize};

/// Sales of one vehicle application in one region and year.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SalesRecord {
    /// Free-text application name (e.g. "excavator").
    pub application: String,
    /// Free-text region name (e.g. "Europe").
    pub region: String,
    /// Calendar year.
    pub year: i32,
    /// Units sold.
    pub units: u64,
}

impl SalesRecord {
    /// Creates a record.
    #[must_use]
    pub fn new(
        application: impl Into<String>,
        region: impl Into<String>,
        year: i32,
        units: u64,
    ) -> Self {
        Self {
            application: application.into(),
            region: region.into(),
            year,
            units,
        }
    }
}

/// A small sales ledger with the filters the PSP financial workflow needs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SalesLedger {
    records: Vec<SalesRecord>,
}

impl SalesLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a record.
    pub fn push(&mut self, record: SalesRecord) {
        self.records.push(record);
    }

    /// All records.
    #[must_use]
    pub fn records(&self) -> &[SalesRecord] {
        &self.records
    }

    /// Total units sold for an application/region in one year (`VS`).
    #[must_use]
    pub fn units_in_year(&self, application: &str, region: &str, year: i32) -> u64 {
        self.records
            .iter()
            .filter(|r| {
                r.application.eq_ignore_ascii_case(application)
                    && r.region.eq_ignore_ascii_case(region)
                    && r.year == year
            })
            .map(|r| r.units)
            .sum()
    }

    /// The most recent year with data for an application/region.
    #[must_use]
    pub fn latest_year(&self, application: &str, region: &str) -> Option<i32> {
        self.records
            .iter()
            .filter(|r| {
                r.application.eq_ignore_ascii_case(application)
                    && r.region.eq_ignore_ascii_case(region)
            })
            .map(|r| r.year)
            .max()
    }

    /// Previous-year sales (`VS` of "the past year’s vehicle sales trend reports"):
    /// units in the latest available year for the application/region.
    #[must_use]
    pub fn previous_year_sales(&self, application: &str, region: &str) -> Option<u64> {
        let year = self.latest_year(application, region)?;
        Some(self.units_in_year(application, region, year))
    }
}

impl FromIterator<SalesRecord> for SalesLedger {
    fn from_iter<T: IntoIterator<Item = SalesRecord>>(iter: T) -> Self {
        Self {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> SalesLedger {
        vec![
            SalesRecord::new("excavator", "Europe", 2021, 18_000),
            SalesRecord::new("excavator", "Europe", 2022, 20_086),
            SalesRecord::new("excavator", "NorthAmerica", 2022, 26_000),
            SalesRecord::new("passenger car", "Europe", 2022, 9_300_000),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn units_filter_by_all_dimensions() {
        let l = ledger();
        assert_eq!(l.units_in_year("excavator", "Europe", 2022), 20_086);
        assert_eq!(l.units_in_year("excavator", "Europe", 2021), 18_000);
        assert_eq!(l.units_in_year("excavator", "Europe", 2019), 0);
    }

    #[test]
    fn matching_is_case_insensitive() {
        let l = ledger();
        assert_eq!(l.units_in_year("Excavator", "europe", 2022), 20_086);
    }

    #[test]
    fn latest_year_and_previous_year_sales() {
        let l = ledger();
        assert_eq!(l.latest_year("excavator", "Europe"), Some(2022));
        assert_eq!(l.previous_year_sales("excavator", "Europe"), Some(20_086));
        assert_eq!(l.previous_year_sales("tractor", "Europe"), None);
    }

    #[test]
    fn duplicate_rows_accumulate() {
        let mut l = ledger();
        l.push(SalesRecord::new("excavator", "Europe", 2022, 14));
        assert_eq!(l.units_in_year("excavator", "Europe", 2022), 20_100);
    }

    #[test]
    fn empty_ledger() {
        let l = SalesLedger::new();
        assert!(l.records().is_empty());
        assert_eq!(l.previous_year_sales("x", "y"), None);
    }
}
