//! Break-even analysis (paper Equations 3–5 and Figure 11).
//!
//! The break-even point is the number of sold attack "units" at which the
//! adversary's revenue covers their cost:
//!
//! ```text
//! BEP = FC / ((PPIA − VCU) / n) = FC · n / (PPIA − VCU)          (Equation 3)
//! FC  = FTEH · ch + SLD                                           (Equation 4)
//! FC  = BEP · (PPIA − VCU) / n                                    (Equation 5, inverse)
//! ```
//!
//! Figure 11 plots the revenue and total-cost lines whose intersection is the BEP;
//! [`BreakEvenAnalysis::curve`] produces exactly those series.

use serde::{Deserialize, Serialize};

/// One point of the revenue/cost curves of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostRevenuePoint {
    /// Units sold.
    pub units: f64,
    /// Cumulative revenue at that volume.
    pub revenue: f64,
    /// Cumulative total cost (fixed + variable) at that volume.
    pub cost: f64,
}

impl CostRevenuePoint {
    /// Whether the adversary is profitable at this volume (revenue ≥ cost) — the
    /// blue zone of Figure 11.
    #[must_use]
    pub fn is_profitable(&self) -> bool {
        self.revenue >= self.cost
    }
}

/// The parameters of a break-even analysis for one insider attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakEvenAnalysis {
    /// Fixed cost `FC` of developing the attack (EUR).
    pub fixed_cost: f64,
    /// Purchase price per insider attack `PPIA` (EUR per unit).
    pub ppia: f64,
    /// Variable cost per unit `VCU` (EUR per unit).
    pub vcu: f64,
    /// Number of competing attackers `n` sharing the market.
    pub competitors: u32,
}

impl BreakEvenAnalysis {
    /// Creates an analysis.  `competitors` is clamped to at least 1.
    #[must_use]
    pub fn new(fixed_cost: f64, ppia: f64, vcu: f64, competitors: u32) -> Self {
        Self {
            fixed_cost,
            ppia,
            vcu,
            competitors: competitors.max(1),
        }
    }

    /// Computes `FC` from the effort model of Equation 4.
    ///
    /// * `fte_hours` — total engineering hours (`FTEH`),
    /// * `hourly_cost` — hourly cost of the adversary workforce (`ch`),
    /// * `sld` — yearly straight-line depreciation of the lab.
    #[must_use]
    pub fn from_effort(
        fte_hours: f64,
        hourly_cost: f64,
        sld: f64,
        ppia: f64,
        vcu: f64,
        competitors: u32,
    ) -> Self {
        Self::new(fte_hours * hourly_cost + sld, ppia, vcu, competitors)
    }

    /// The unit margin `(PPIA − VCU)`.
    #[must_use]
    pub fn unit_margin(&self) -> f64 {
        self.ppia - self.vcu
    }

    /// The break-even point of Equation 3 in units.  Returns `None` when the unit
    /// margin is not positive (the attack can never pay for itself).
    #[must_use]
    pub fn break_even_units(&self) -> Option<f64> {
        let margin = self.unit_margin();
        if margin <= 0.0 {
            return None;
        }
        Some(self.fixed_cost * f64::from(self.competitors) / margin)
    }

    /// The inverse function of Equation 5: the fixed cost (total investment) that a
    /// given break-even volume corresponds to.  The PSP framework sets the
    /// break-even volume to `PAE` to obtain the investment an attacker could justify
    /// — i.e. the budget the product's protections must withstand.
    #[must_use]
    pub fn fixed_cost_for_break_even(&self, break_even_units: f64) -> f64 {
        break_even_units * self.unit_margin() / f64::from(self.competitors)
    }

    /// Whether a sales volume lands in the profitable (blue) zone of Figure 11.
    #[must_use]
    pub fn is_profitable_at(&self, units: f64) -> bool {
        match self.break_even_units() {
            Some(bep) => units >= bep,
            None => false,
        }
    }

    /// The revenue and total-cost curves of Figure 11, sampled at `samples` evenly
    /// spaced volumes from 0 to `max_units`.  Each attacker only captures
    /// `1 / competitors` of the demand, which matches the per-attacker revenue split
    /// of Equation 3.
    #[must_use]
    pub fn curve(&self, max_units: f64, samples: usize) -> Vec<CostRevenuePoint> {
        let samples = samples.max(2);
        let mut out = Vec::with_capacity(samples);
        for i in 0..samples {
            let units = max_units * i as f64 / (samples - 1) as f64;
            let captured = units / f64::from(self.competitors);
            out.push(CostRevenuePoint {
                units,
                revenue: captured * self.ppia,
                cost: self.fixed_cost + captured * self.vcu,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example: FC such that BEP equals PAE = 1 406 with
    /// PPIA − VCU = 310 EUR and n = 3 competitors gives FC ≈ 145 286 EUR.
    #[test]
    fn paper_equation_7_inverse_fixed_cost() {
        let analysis = BreakEvenAnalysis::new(0.0, 360.0, 50.0, 3);
        let fc = analysis.fixed_cost_for_break_even(1_406.0);
        assert!((fc - 145_286.0).abs() < 100.0, "FC = {fc}");
    }

    #[test]
    fn equation_3_break_even() {
        let analysis = BreakEvenAnalysis::new(145_286.0, 360.0, 50.0, 3);
        let bep = analysis.break_even_units().unwrap();
        assert!((bep - 1_406.0).abs() < 2.0, "BEP = {bep}");
    }

    #[test]
    fn equation_4_effort_model() {
        let analysis = BreakEvenAnalysis::from_effort(1_600.0, 85.0, 9_286.0, 360.0, 50.0, 3);
        assert!((analysis.fixed_cost - 145_286.0).abs() < 1.0);
    }

    #[test]
    fn non_positive_margin_never_breaks_even() {
        let analysis = BreakEvenAnalysis::new(10_000.0, 100.0, 120.0, 1);
        assert_eq!(analysis.break_even_units(), None);
        assert!(!analysis.is_profitable_at(1e9));
    }

    #[test]
    fn profitability_zones_around_the_bep() {
        let analysis = BreakEvenAnalysis::new(10_000.0, 300.0, 100.0, 2);
        let bep = analysis.break_even_units().unwrap();
        assert!(!analysis.is_profitable_at(bep * 0.5));
        assert!(analysis.is_profitable_at(bep * 1.5));
        assert!(analysis.is_profitable_at(bep));
    }

    #[test]
    fn curve_crosses_at_the_break_even_point() {
        let analysis = BreakEvenAnalysis::new(10_000.0, 300.0, 100.0, 1);
        let bep = analysis.break_even_units().unwrap();
        let points = analysis.curve(bep * 2.0, 201);
        // Below the BEP cost exceeds revenue; above, revenue exceeds cost.
        let below = points.iter().filter(|p| p.units < bep * 0.95);
        let above = points.iter().filter(|p| p.units > bep * 1.05);
        assert!(below.clone().count() > 0 && above.clone().count() > 0);
        assert!(below.clone().all(|p| !p.is_profitable()));
        assert!(above.clone().all(|p| p.is_profitable()));
    }

    #[test]
    fn competitors_are_clamped_to_one() {
        let analysis = BreakEvenAnalysis::new(1_000.0, 200.0, 100.0, 0);
        assert_eq!(analysis.competitors, 1);
        assert_eq!(analysis.break_even_units(), Some(10.0));
    }

    #[test]
    fn more_competitors_push_the_bep_out() {
        let solo = BreakEvenAnalysis::new(1_000.0, 200.0, 100.0, 1);
        let crowded = BreakEvenAnalysis::new(1_000.0, 200.0, 100.0, 4);
        assert!(crowded.break_even_units().unwrap() > solo.break_even_units().unwrap());
    }

    #[test]
    fn curve_has_requested_resolution() {
        let analysis = BreakEvenAnalysis::new(1_000.0, 200.0, 100.0, 1);
        assert_eq!(analysis.curve(100.0, 11).len(), 11);
        assert_eq!(analysis.curve(100.0, 1).len(), 2, "minimum two samples");
    }
}
