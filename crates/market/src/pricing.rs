//! Adversary pricing study (the `PPIA` and `VCU` terms).
//!
//! The PSP framework estimates the purchase price per insider attack (`PPIA`) by
//! clustering the prices of defeat devices and tuning services advertised online,
//! and the variable cost per unit (`VCU`) from the bare component price.  This
//! module aggregates price observations (typically produced by
//! `textmine::price::extract_prices` over a social corpus) into those two numbers.

use serde::{Deserialize, Serialize};

/// A single observed price.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceObservation {
    /// The price in EUR.
    pub eur: f64,
    /// Whether the listing is a full service (install included) rather than a bare
    /// component.  Bare-component listings inform `VCU`, full listings inform
    /// `PPIA`.
    pub full_service: bool,
}

impl PriceObservation {
    /// A full-service listing.
    #[must_use]
    pub fn service(eur: f64) -> Self {
        Self {
            eur,
            full_service: true,
        }
    }

    /// A bare-component listing.
    #[must_use]
    pub fn component(eur: f64) -> Self {
        Self {
            eur,
            full_service: false,
        }
    }
}

/// An aggregated pricing study for one insider attack.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PricingStudy {
    observations: Vec<PriceObservation>,
}

impl PricingStudy {
    /// Creates an empty study.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a study from observations.
    #[must_use]
    pub fn from_observations(observations: impl IntoIterator<Item = PriceObservation>) -> Self {
        Self {
            observations: observations.into_iter().collect(),
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, observation: PriceObservation) {
        self.observations.push(observation);
    }

    /// All observations.
    #[must_use]
    pub fn observations(&self) -> &[PriceObservation] {
        &self.observations
    }

    /// The purchase price per insider attack: the median of full-service prices,
    /// falling back to the median of all prices.
    #[must_use]
    pub fn ppia(&self) -> Option<f64> {
        let service: Vec<f64> = self
            .observations
            .iter()
            .filter(|o| o.full_service)
            .map(|o| o.eur)
            .collect();
        if !service.is_empty() {
            return median(&service);
        }
        let all: Vec<f64> = self.observations.iter().map(|o| o.eur).collect();
        median(&all)
    }

    /// The variable cost per unit: the median of bare-component prices, falling back
    /// to a configurable fraction (default 1/7, roughly the paper's 50-out-of-360
    /// split between component cost and street price) of the PPIA.
    #[must_use]
    pub fn vcu(&self) -> Option<f64> {
        let components: Vec<f64> = self
            .observations
            .iter()
            .filter(|o| !o.full_service)
            .map(|o| o.eur)
            .collect();
        if !components.is_empty() {
            return median(&components);
        }
        self.ppia().map(|p| p / 7.0)
    }

    /// The attacker's unit margin `PPIA − VCU` (the denominator of Equation 3).
    #[must_use]
    pub fn unit_margin(&self) -> Option<f64> {
        match (self.ppia(), self.vcu()) {
            (Some(p), Some(v)) => Some(p - v),
            _ => None,
        }
    }
}

fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = sorted.len() / 2;
    Some(if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppia_prefers_full_service_listings() {
        let study = PricingStudy::from_observations([
            PriceObservation::service(360.0),
            PriceObservation::service(380.0),
            PriceObservation::service(340.0),
            PriceObservation::component(55.0),
        ]);
        assert_eq!(study.ppia(), Some(360.0));
        assert_eq!(study.vcu(), Some(55.0));
    }

    #[test]
    fn fallback_when_only_unlabelled_prices_exist() {
        let study = PricingStudy::from_observations([
            PriceObservation::component(100.0),
            PriceObservation::component(140.0),
        ]);
        assert_eq!(study.ppia(), Some(120.0));
        assert_eq!(study.vcu(), Some(120.0));
    }

    #[test]
    fn vcu_fallback_is_a_fraction_of_ppia() {
        let study = PricingStudy::from_observations([PriceObservation::service(350.0)]);
        let vcu = study.vcu().unwrap();
        assert!((vcu - 50.0).abs() < 1.0);
    }

    #[test]
    fn unit_margin() {
        let study = PricingStudy::from_observations([
            PriceObservation::service(360.0),
            PriceObservation::component(50.0),
        ]);
        assert_eq!(study.unit_margin(), Some(310.0));
    }

    #[test]
    fn empty_study_yields_none() {
        let study = PricingStudy::new();
        assert_eq!(study.ppia(), None);
        assert_eq!(study.vcu(), None);
        assert_eq!(study.unit_margin(), None);
    }

    #[test]
    fn push_accumulates() {
        let mut study = PricingStudy::new();
        study.push(PriceObservation::service(300.0));
        assert_eq!(study.observations().len(), 1);
    }
}
