//! Straight-line depreciation of CAPEX items (the `SLD` term of Equation 4).
//!
//! Equation 4 of the paper includes "the depreciation of Capital Expenditures
//! (CAPEX) items on a straight-line basis (SLD), which includes various development
//! tools, electronic instruments, and specialized hardware and software, primarily
//! laboratory instrumentation such as Analyzers, Tracers, Debuggers, and
//! Oscilloscopes."

use serde::{Deserialize, Serialize};

/// A capital-expenditure item owned by the adversary's "lab".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapexItem {
    /// Item description (e.g. "CAN analyzer").
    pub name: String,
    /// Acquisition cost in EUR.
    pub acquisition_cost_eur: f64,
    /// Useful life in years over which the cost is spread.
    pub useful_life_years: u32,
    /// Residual value at the end of the useful life.
    pub residual_value_eur: f64,
}

impl CapexItem {
    /// Creates an item with zero residual value.
    #[must_use]
    pub fn new(name: impl Into<String>, acquisition_cost_eur: f64, useful_life_years: u32) -> Self {
        Self {
            name: name.into(),
            acquisition_cost_eur,
            useful_life_years,
            residual_value_eur: 0.0,
        }
    }

    /// Sets a residual value.
    #[must_use]
    pub fn with_residual(mut self, residual_value_eur: f64) -> Self {
        self.residual_value_eur = residual_value_eur;
        self
    }

    /// The yearly straight-line depreciation charge.
    #[must_use]
    pub fn annual_depreciation(&self) -> f64 {
        if self.useful_life_years == 0 {
            return self.acquisition_cost_eur - self.residual_value_eur;
        }
        (self.acquisition_cost_eur - self.residual_value_eur) / f64::from(self.useful_life_years)
    }
}

/// The total yearly straight-line depreciation (`SLD`) of a set of CAPEX items.
#[must_use]
pub fn straight_line_depreciation(items: &[CapexItem]) -> f64 {
    items.iter().map(CapexItem::annual_depreciation).sum()
}

/// A typical adversary lab for ECU tampering work, matching the instrument list the
/// paper gives (analyzer, tracer, debugger, oscilloscope) plus bench tooling.
#[must_use]
pub fn typical_adversary_lab() -> Vec<CapexItem> {
    vec![
        CapexItem::new("CAN/LIN bus analyzer", 8_000.0, 5),
        CapexItem::new("Protocol tracer", 6_000.0, 5),
        CapexItem::new("JTAG/SWD debugger", 4_000.0, 4),
        CapexItem::new("Mixed-signal oscilloscope", 12_000.0, 6),
        CapexItem::new("ECU bench harness and power supplies", 3_000.0, 5),
        CapexItem::new("Commercial flashing suite licence", 5_000.0, 3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annual_depreciation_spreads_cost() {
        let scope = CapexItem::new("oscilloscope", 12_000.0, 6);
        assert!((scope.annual_depreciation() - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn residual_value_reduces_the_charge() {
        let item = CapexItem::new("debugger", 4_000.0, 4).with_residual(400.0);
        assert!((item.annual_depreciation() - 900.0).abs() < 1e-9);
    }

    #[test]
    fn zero_life_charges_everything_at_once() {
        let item = CapexItem::new("disposable", 100.0, 0);
        assert_eq!(item.annual_depreciation(), 100.0);
    }

    #[test]
    fn sld_sums_over_items() {
        let items = vec![
            CapexItem::new("a", 1_000.0, 2),
            CapexItem::new("b", 3_000.0, 3),
        ];
        assert!((straight_line_depreciation(&items) - 1_500.0).abs() < 1e-9);
    }

    #[test]
    fn typical_lab_is_plausible() {
        let lab = typical_adversary_lab();
        assert_eq!(lab.len(), 6);
        let sld = straight_line_depreciation(&lab);
        assert!(sld > 4_000.0 && sld < 12_000.0, "SLD {sld}");
    }

    #[test]
    fn empty_lab_has_zero_sld() {
        assert_eq!(straight_line_depreciation(&[]), 0.0);
    }
}
