//! Calibrated datasets reproducing the paper's worked example.
//!
//! The paper's excavator case study reports, for DPF tampering on European soil
//! excavators:
//!
//! * `PAE` (potential attackers) = 1 406,
//! * `PPIA` (average defeat-device price) = 360 EUR,
//! * `MV = PAE · PPIA ≈ 506 160 EUR / year` (Equation 6),
//! * `PPIA − VCU = 310 EUR`, `n = 3` competitors,
//! * `FC = BEP · (PPIA − VCU) / n ≈ 145 286 EUR` (Equation 7).
//!
//! The proprietary inputs (Upstream report, sales statistics) are replaced here by
//! synthetic-but-calibrated records chosen so that the pipeline run end-to-end
//! reproduces those constants: 20 086 excavators sold in Europe in 2022 with a 7 %
//! emission-tampering prevalence gives `PAE = 1 406`.

use crate::reports::{CyberSecurityReport, IncidentStatistic};
use crate::sales::{SalesLedger, SalesRecord};
use crate::share::MarketStructure;

/// European excavator sales ledger (latest year calibrated to 20 086 units).
#[must_use]
pub fn excavator_sales_europe() -> SalesLedger {
    vec![
        SalesRecord::new("excavator", "Europe", 2019, 17_400),
        SalesRecord::new("excavator", "Europe", 2020, 16_100),
        SalesRecord::new("excavator", "Europe", 2021, 18_900),
        SalesRecord::new("excavator", "Europe", 2022, 20_086),
    ]
    .into_iter()
    .collect()
}

/// The synthetic annual report providing the emission-tampering prevalence
/// (`PEA` = 7 %) plus a few other categories used by the examples.
#[must_use]
pub fn annual_report() -> CyberSecurityReport {
    CyberSecurityReport::new("Synthetic Automotive Cybersecurity Observatory")
        .with_statistic(IncidentStatistic::new(
            "emission tampering (DPF)",
            2021,
            0.064,
        ))
        .with_statistic(IncidentStatistic::new(
            "emission tampering (DPF)",
            2022,
            0.07,
        ))
        .with_statistic(IncidentStatistic::new(
            "emission tampering (EGR)",
            2022,
            0.045,
        ))
        .with_statistic(IncidentStatistic::new("ECU reprogramming", 2022, 0.11))
        .with_statistic(IncidentStatistic::new("AdBlue/SCR emulation", 2022, 0.03))
        .with_statistic(IncidentStatistic::new("keyless entry theft", 2022, 0.004))
        .with_statistic(IncidentStatistic::new(
            "odometer / hour-meter fraud",
            2022,
            0.02,
        ))
}

/// The market structure the paper assumes for the excavator example: a single major
/// manufacturer's fleet, treated as monopolistic for the `PAE` computation.
#[must_use]
pub fn excavator_market_structure() -> MarketStructure {
    MarketStructure::Monopolistic
}

/// The number of competing adversaries the paper's Equation 7 assumes.
pub const PAPER_COMPETITORS: u32 = 3;

/// The defeat-device street price the paper's NLP search returned (EUR).
pub const PAPER_PPIA_EUR: f64 = 360.0;

/// The unit margin the paper uses in Equation 7 (`PPIA − VCU` = 310 EUR).
pub const PAPER_UNIT_MARGIN_EUR: f64 = 310.0;

/// The potential-attacker estimate the paper reports.
pub const PAPER_PAE: f64 = 1_406.0;

/// The market value the paper reports for DPF tampering (Equation 6).
pub const PAPER_MV_EUR: f64 = 506_160.0;

/// The fixed-cost / investment bound the paper reports (Equation 7).
pub const PAPER_FC_EUR: f64 = 145_286.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bep::BreakEvenAnalysis;

    #[test]
    fn calibration_reproduces_pae() {
        let sales = excavator_sales_europe();
        let report = annual_report();
        let vs = sales.previous_year_sales("excavator", "Europe").unwrap();
        let pea = report
            .potential_attacker_share("emission tampering (DPF)")
            .unwrap();
        let pae = excavator_market_structure().exposed_units(vs) * pea;
        assert!((pae - PAPER_PAE).abs() < 1.5, "PAE = {pae}");
    }

    #[test]
    fn calibration_reproduces_equation_6_market_value() {
        let mv = PAPER_PAE * PAPER_PPIA_EUR;
        assert!((mv - PAPER_MV_EUR).abs() < 1.0);
    }

    #[test]
    fn calibration_reproduces_equation_7_fixed_cost() {
        let analysis = BreakEvenAnalysis::new(
            0.0,
            PAPER_PPIA_EUR,
            PAPER_PPIA_EUR - PAPER_UNIT_MARGIN_EUR,
            PAPER_COMPETITORS,
        );
        let fc = analysis.fixed_cost_for_break_even(PAPER_PAE);
        assert!((fc - PAPER_FC_EUR).abs() < 100.0, "FC = {fc}");
    }

    #[test]
    fn report_covers_the_example_categories() {
        let r = annual_report();
        assert!(r.potential_attacker_share("DPF").is_some());
        assert!(r.potential_attacker_share("reprogramming").is_some());
        assert!(r.potential_attacker_share("hour-meter").is_some());
    }

    #[test]
    fn sales_cover_four_years() {
        let s = excavator_sales_europe();
        assert_eq!(s.records().len(), 4);
        assert_eq!(s.latest_year("excavator", "Europe"), Some(2022));
    }
}
