//! Synthetic cybersecurity annual reports (the `PEA` term of Equation 2).
//!
//! The paper determines the "percentage of potential attackers" by text-mining
//! vehicle cybersecurity annual reports (it cites the Upstream global report).
//! Those reports are proprietary, so this module models the statistic they provide:
//! per attack category and year, the share of the fleet whose owners engage in the
//! corresponding insider attack.

use serde::{Deserialize, Serialize};

/// One line of an annual report: incident prevalence for an attack category.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentStatistic {
    /// Attack category (e.g. "emission tampering", "ECU reprogramming").
    pub category: String,
    /// Year covered.
    pub year: i32,
    /// Share of the observed fleet affected, as a fraction in `[0, 1]`.
    pub prevalence: f64,
}

impl IncidentStatistic {
    /// Creates a statistic, clamping the prevalence into `[0, 1]`.
    #[must_use]
    pub fn new(category: impl Into<String>, year: i32, prevalence: f64) -> Self {
        Self {
            category: category.into(),
            year,
            prevalence: prevalence.clamp(0.0, 1.0),
        }
    }
}

/// A cybersecurity annual report (a bag of incident statistics).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CyberSecurityReport {
    publisher: String,
    statistics: Vec<IncidentStatistic>,
}

impl CyberSecurityReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new(publisher: impl Into<String>) -> Self {
        Self {
            publisher: publisher.into(),
            statistics: Vec::new(),
        }
    }

    /// Adds a statistic.
    #[must_use]
    pub fn with_statistic(mut self, statistic: IncidentStatistic) -> Self {
        self.statistics.push(statistic);
        self
    }

    /// The publisher name.
    #[must_use]
    pub fn publisher(&self) -> &str {
        &self.publisher
    }

    /// All statistics.
    #[must_use]
    pub fn statistics(&self) -> &[IncidentStatistic] {
        &self.statistics
    }

    /// The percentage of potential attackers (`PEA`) for an attack category: the
    /// prevalence reported for the most recent year whose category matches
    /// case-insensitively (substring match, so "emission" finds
    /// "emission tampering").
    #[must_use]
    pub fn potential_attacker_share(&self, category: &str) -> Option<f64> {
        let needle = category.to_lowercase();
        self.statistics
            .iter()
            .filter(|s| s.category.to_lowercase().contains(&needle))
            .max_by_key(|s| s.year)
            .map(|s| s.prevalence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CyberSecurityReport {
        CyberSecurityReport::new("Fleet Security Observatory")
            .with_statistic(IncidentStatistic::new("emission tampering", 2021, 0.055))
            .with_statistic(IncidentStatistic::new("emission tampering", 2022, 0.07))
            .with_statistic(IncidentStatistic::new("ECU reprogramming", 2022, 0.12))
            .with_statistic(IncidentStatistic::new("keyless theft", 2022, 0.004))
    }

    #[test]
    fn most_recent_year_wins() {
        let r = report();
        assert_eq!(r.potential_attacker_share("emission tampering"), Some(0.07));
    }

    #[test]
    fn substring_and_case_insensitive_match() {
        let r = report();
        assert_eq!(r.potential_attacker_share("Emission"), Some(0.07));
        assert_eq!(r.potential_attacker_share("reprogramming"), Some(0.12));
    }

    #[test]
    fn unknown_category_is_none() {
        assert_eq!(report().potential_attacker_share("ransomware"), None);
    }

    #[test]
    fn prevalence_is_clamped() {
        let s = IncidentStatistic::new("x", 2022, 7.0);
        assert_eq!(s.prevalence, 1.0);
        let s = IncidentStatistic::new("x", 2022, -1.0);
        assert_eq!(s.prevalence, 0.0);
    }

    #[test]
    fn publisher_and_statistics_accessors() {
        let r = report();
        assert_eq!(r.publisher(), "Fleet Security Observatory");
        assert_eq!(r.statistics().len(), 4);
    }
}
