//! Market structure and market share (the `MS` term of Equation 2).
//!
//! Equation 2 of the paper distinguishes monopolistic markets (use total vehicle
//! sales `VS`) from non-monopolistic ones (use the manufacturer's market share
//! `MS`, i.e. the slice of the fleet actually exposed to the attack in question).

use serde::{Deserialize, Serialize};

/// Whether the market for the application under analysis is effectively served by a
/// single manufacturer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MarketStructure {
    /// One manufacturer dominates: the potential-attacker base is the whole market
    /// (`PAE = VS · PEA`).
    Monopolistic,
    /// Several manufacturers compete: only the manufacturer's own share matters
    /// (`PAE = MS · PEA`), expressed as a fraction of total sales in `0.0..=1.0`.
    NonMonopolistic {
        /// The manufacturer's market share as a fraction.
        share: f64,
    },
}

impl MarketStructure {
    /// Creates a non-monopolistic structure, clamping the share into `[0, 1]`.
    #[must_use]
    pub fn with_share(share: f64) -> Self {
        MarketStructure::NonMonopolistic {
            share: share.clamp(0.0, 1.0),
        }
    }

    /// The exposed-fleet size: all sold units for a monopolistic market, the
    /// manufacturer's share of them otherwise.
    #[must_use]
    pub fn exposed_units(&self, total_units_sold: u64) -> f64 {
        match self {
            MarketStructure::Monopolistic => total_units_sold as f64,
            MarketStructure::NonMonopolistic { share } => total_units_sold as f64 * share,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monopolistic_uses_all_units() {
        assert_eq!(
            MarketStructure::Monopolistic.exposed_units(20_000),
            20_000.0
        );
    }

    #[test]
    fn non_monopolistic_scales_by_share() {
        let s = MarketStructure::with_share(0.35);
        assert!((s.exposed_units(20_000) - 7_000.0).abs() < 1e-9);
    }

    #[test]
    fn share_is_clamped() {
        assert_eq!(MarketStructure::with_share(1.7).exposed_units(100), 100.0);
        assert_eq!(MarketStructure::with_share(-0.3).exposed_units(100), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let s = MarketStructure::with_share(0.42);
        let json = serde_json::to_string(&s).unwrap();
        let back: MarketStructure = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
