//! Market and financial substrate for the PSP framework.
//!
//! The second half of the PSP framework (paper Section III, Figures 10–11,
//! Equations 1–7) values every insider attack as a market:
//!
//! * [`sales`] — vehicle-sales records that provide `VS` (Equation 2),
//! * [`share`] — market-share records that provide `MS` for non-monopolistic
//!   markets,
//! * [`reports`] — synthetic cybersecurity annual reports that provide the
//!   percentage of potential attackers `PEA`,
//! * [`pricing`] — adversary device / service listings that provide the purchase
//!   price per insider attack `PPIA` and the variable cost per unit `VCU`,
//! * [`depreciation`] — straight-line depreciation of CAPEX items (`SLD`,
//!   Equation 4),
//! * [`bep`] — the break-even analysis of Equations 3–5 and the revenue/cost curves
//!   behind Figure 11,
//! * [`datasets`] — the calibrated dataset that reproduces the paper's worked
//!   excavator example (PAE = 1 406, PPIA = 360 EUR, MV ≈ 506 160 EUR,
//!   FC ≈ 145 286 EUR).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bep;
pub mod datasets;
pub mod depreciation;
pub mod pricing;
pub mod reports;
pub mod sales;
pub mod share;

pub use bep::{BreakEvenAnalysis, CostRevenuePoint};
pub use depreciation::{straight_line_depreciation, CapexItem};
pub use pricing::{PriceObservation, PricingStudy};
pub use reports::{CyberSecurityReport, IncidentStatistic};
pub use sales::{SalesLedger, SalesRecord};
pub use share::MarketStructure;
